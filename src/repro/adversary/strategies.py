"""Byzantine strategies exercising each attack surface of NAB.

Each strategy overrides only the hooks relevant to its attack; everything else
follows the honest protocol, which is the hardest case for detection (a noisy
attacker that corrupts everything is trivially caught).

Every strategy accepts a ``seed`` keyword and stores it, so the scenario /
experiment-engine seed is threaded uniformly through every factory.  The
hand-written strategies are deterministic functions of their arguments — their
default behaviour does not depend on the seed — which keeps historically
committed experiment grids byte-identical while letting seeded strategies
(chaos, and the zoo in :mod:`repro.adversary.zoo`) consume it.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Sequence

from repro.transport.faults import ByzantineStrategy
from repro.types import NodeId


def chaos_stream(seed: int, *key: Any) -> random.Random:
    """The frozen per-decision RNG of :class:`RandomizedChaosStrategy`.

    One generator per ``(seed, call-site key)`` makes every decision a pure
    function of its arguments: the same cell replayed under the sweep runner,
    the pipelined executor or the adversarial search driver draws exactly the
    same stream regardless of call order or interleaving.  CPython seeds
    ``random.Random`` from a string via SHA-512, so the stream is also stable
    across processes and ``PYTHONHASHSEED`` values.

    This derivation is FROZEN: committed experiment grids (the
    ``nab_vs_classical`` comparison among them) embed its outputs, so any
    change to the key layout or the draw order is a silently corpus-breaking
    change.  A regression test pins literal draws from this stream.
    """
    return random.Random("|".join([str(seed)] + [repr(part) for part in key]))


class CrashStrategy(ByzantineStrategy):
    """Omission faults: the node "sends nothing", modelled as all-zero / default values.

    The paper stipulates that a missing message is interpreted as a default
    value by its recipient, so a crash is equivalent to sending that default.
    """

    name = "crash"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def phase1_source_symbol(self, instance, tree_index, child, true_symbol):
        return 0

    def phase1_forward_symbol(self, instance, node, tree_index, child, true_symbol):
        return 0

    def equality_check_vector(self, instance, node, neighbor, true_vector):
        return [0] * len(true_vector)

    def equality_check_flag(self, instance, node, true_flag):
        return False

    def broadcast_value(self, instance, node, receiver, context, true_value):
        return None

    def relay_value(self, instance, node, path, receiver, true_value):
        return None

    def dispute_claims(self, instance, node, true_claims):
        return {}


class EquivocatingSourceStrategy(ByzantineStrategy):
    """The faulty source sends different Phase 1 symbols to different subtrees.

    This creates outcome (iv) of Phase 1 (fault-free nodes receive different
    values), which the Equality Check must detect.
    """

    name = "equivocating-source"

    def __init__(self, flip_mask: int = 1, seed: int = 0) -> None:
        self.flip_mask = flip_mask
        self.seed = seed

    def phase1_source_symbol(self, instance, tree_index, child, true_symbol):
        # Children with even identifiers receive a corrupted symbol.
        if child % 2 == 0:
            return true_symbol ^ self.flip_mask
        return true_symbol


class Phase1CorruptingRelayStrategy(ByzantineStrategy):
    """A faulty relay corrupts the symbols it forwards during Phase 1 only."""

    name = "phase1-corrupting-relay"

    def __init__(self, flip_mask: int = 1, seed: int = 0) -> None:
        self.flip_mask = flip_mask
        self.seed = seed

    def phase1_forward_symbol(self, instance, node, tree_index, child, true_symbol):
        return true_symbol ^ self.flip_mask


class EqualityGarbageStrategy(ByzantineStrategy):
    """A faulty node sends garbage coded symbols during the Equality Check.

    This cannot break agreement (the symbols a node sends about *its own*
    value only ever cause extra MISMATCH flags) but it does force dispute
    control, so it is the canonical "waste everyone's time" attack.
    """

    name = "equality-garbage"

    def __init__(self, offset: int = 1, seed: int = 0) -> None:
        self.offset = offset
        self.seed = seed

    def equality_check_vector(self, instance, node, neighbor, true_vector):
        return [symbol ^ self.offset for symbol in true_vector]


class FalseFlagStrategy(ByzantineStrategy):
    """A faulty node announces MISMATCH even though its checks all passed."""

    name = "false-flag"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def equality_check_flag(self, instance, node, true_flag):
        return True


class DisputeLiarStrategy(ByzantineStrategy):
    """During dispute control the faulty node lies about what it received in Phase 1.

    Combined with corrupting Phase 1 forwards, this is the attack that forces
    dispute control to fall back on pairwise disputes rather than immediately
    identifying the faulty node.
    """

    name = "dispute-liar"

    def __init__(self, flip_mask: int = 1, seed: int = 0) -> None:
        self.flip_mask = flip_mask
        self.seed = seed

    def phase1_forward_symbol(self, instance, node, tree_index, child, true_symbol):
        return true_symbol ^ self.flip_mask

    def dispute_claims(self, instance, node, true_claims):
        claims = {key: dict(value) if isinstance(value, dict) else value
                  for key, value in true_claims.items()}
        received = dict(claims.get("phase1_received", {}))
        # Claim it received exactly what it (corruptedly) forwarded, pushing the
        # blame towards its parents.
        for tree_index, symbol in received.items():
            received[tree_index] = symbol ^ self.flip_mask
        claims["phase1_received"] = received
        return claims


class SubBroadcastLiarStrategy(ByzantineStrategy):
    """Corrupts the classical sub-broadcast (EIG) rounds with inconsistent values."""

    name = "sub-broadcast-liar"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def broadcast_value(self, instance, node, receiver, context, true_value):
        return ("lie", receiver % 2)


class RandomizedChaosStrategy(ByzantineStrategy):
    """Seeded random misbehaviour on every hook (for property-based robustness tests).

    Every decision draws from :func:`chaos_stream` keyed by the full call-site
    identity, so two cells with the same seed replay identically no matter how
    the search driver, the sweep runner or the pipelined executor interleave
    hook invocations.
    """

    name = "randomized-chaos"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def _rng(self, *key: Any) -> random.Random:
        return chaos_stream(self.seed, *key)

    def phase1_source_symbol(self, instance, tree_index, child, true_symbol):
        rng = self._rng("p1src", instance, tree_index, child)
        return true_symbol ^ rng.getrandbits(8)

    def phase1_forward_symbol(self, instance, node, tree_index, child, true_symbol):
        rng = self._rng("p1fwd", instance, node, tree_index, child)
        return true_symbol ^ rng.getrandbits(8)

    def equality_check_vector(self, instance, node, neighbor, true_vector):
        rng = self._rng("eq", instance, node, neighbor)
        return [symbol ^ rng.getrandbits(4) for symbol in true_vector]

    def equality_check_flag(self, instance, node, true_flag):
        return self._rng("flag", instance, node).random() < 0.5

    def broadcast_value(self, instance, node, receiver, context, true_value):
        rng = self._rng("bb", instance, node, receiver, context)
        if rng.random() < 0.3:
            return ("garbage", rng.getrandbits(8))
        return true_value

    def relay_value(self, instance, node, path, receiver, true_value):
        rng = self._rng("relay", instance, node, tuple(path), receiver)
        if rng.random() < 0.3:
            return ("tampered", rng.getrandbits(8))
        return true_value

    def dispute_claims(self, instance, node, true_claims):
        rng = self._rng("claims", instance, node)
        if rng.random() < 0.5:
            return true_claims
        claims: Dict[str, Any] = {
            key: dict(value) if isinstance(value, dict) else value
            for key, value in true_claims.items()
        }
        received = dict(claims.get("phase1_received", {}))
        for tree_index in list(received):
            if rng.random() < 0.5:
                received[tree_index] = received[tree_index] ^ rng.getrandbits(4)
        claims["phase1_received"] = received
        return claims
