"""``gamma*``: the worst-case Phase 1 broadcast rate over all reachable instance graphs.

Appendix E constructs the family ``Gamma`` of graphs that some execution of
NAB could use as its instance graph ``G_k``: for every *explainable* edge set
``W`` (one that some candidate faulty set ``F`` of at most ``f`` nodes is
incident to), the graph ``Psi_W`` is obtained by removing ``W`` and the nodes
that every explanation of ``W`` contains; graphs that still contain the source
belong to ``Gamma``.  Then

    ``gamma* = min over Psi in Gamma of min_j MINCUT(Psi, 1, j)``.

Enumerating every explainable edge subset is exponential in the number of
edges, but the minimum is attained on *maximal* explainable sets: for a fixed
candidate faulty set ``F``, removing additional ``F``-incident edges only
lowers min-cuts (and can only grow the set of removed nodes, which are by
construction not min-cut targets the adversary can use to its advantage).
This module therefore iterates over candidate faulty sets ``F`` with
``|F| <= f`` and uses ``W_F`` = all edges incident on ``F``, which yields the
same minimum while keeping the computation polynomial for the network sizes
the simulator targets.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.exceptions import ProtocolError
from repro.graph.flow_cache import graph_signature
from repro.graph.mincut import broadcast_mincut
from repro.graph.network_graph import NetworkGraph
from repro.types import Edge, NodeId


def _edges_incident_on(graph: NetworkGraph, nodes: FrozenSet[NodeId]) -> Set[Edge]:
    return {
        (tail, head)
        for tail, head, _capacity in graph.edges()
        if tail in nodes or head in nodes
    }


def _explaining_sets(
    graph: NetworkGraph, removed_edges: Set[Edge], max_faults: int
) -> List[FrozenSet[NodeId]]:
    """All node sets of size at most ``f`` such that every removed edge touches the set."""
    nodes = graph.nodes()
    explaining = []
    for size in range(0, max_faults + 1):
        for candidate in combinations(nodes, size):
            candidate_set = frozenset(candidate)
            if all(tail in candidate_set or head in candidate_set for tail, head in removed_edges):
                explaining.append(candidate_set)
    return explaining


def construct_gamma_family(
    graph: NetworkGraph, source: NodeId, max_faults: int
) -> Dict[FrozenSet[NodeId], NetworkGraph]:
    """The graphs ``Psi_W`` for the maximal explainable edge set of each candidate fault set.

    Returns:
        Mapping from candidate faulty set ``F`` to the corresponding
        ``Psi_{W_F}`` (only entries whose graph still contains the source).

    Raises:
        ProtocolError: if the source is not in the graph or ``max_faults`` is
            negative.
    """
    if not graph.has_node(source):
        raise ProtocolError(f"source {source} is not in the graph")
    if max_faults < 0:
        raise ProtocolError(f"max_faults must be non-negative, got {max_faults}")
    family: Dict[FrozenSet[NodeId], NetworkGraph] = {}
    candidates = [
        frozenset(candidate)
        for size in range(0, max_faults + 1)
        for candidate in combinations(graph.nodes(), size)
    ]
    full_copy: NetworkGraph | None = None
    for faulty_set in candidates:
        removed_edges = _edges_incident_on(graph, faulty_set)
        if not removed_edges:
            # Nothing removed: every candidate set explains the empty edge
            # set, so no node is certainly faulty and Psi_W is the full
            # graph itself.  One detached *frozen* copy (never the caller's
            # graph object, which may be mutated later) is shared by all
            # such candidates instead of rebuilding an identical graph per
            # set; freezing makes the sharing safe against caller mutation.
            if graph.node_count() >= 2:
                if full_copy is None:
                    full_copy = graph.copy().freeze()
                family[faulty_set] = full_copy
            continue
        explaining = _explaining_sets(graph, removed_edges, max_faults)
        if not explaining:
            continue
        certainly_faulty: Set[NodeId] = set(explaining[0])
        for other in explaining[1:]:
            certainly_faulty &= other
        if source in certainly_faulty:
            continue
        candidate_graph = graph.remove_edges(removed_edges).remove_nodes(certainly_faulty)
        if not candidate_graph.has_node(source) or candidate_graph.node_count() < 2:
            continue
        family[faulty_set] = candidate_graph
    return family


def gamma_star(graph: NetworkGraph, source: NodeId, max_faults: int) -> int:
    """``gamma* = min over Gamma of min_j MINCUT(Psi, source, j)``.

    Raises:
        ProtocolError: if the family is empty (e.g. the graph is too small or
            too sparse to run NAB at all).
    """
    family = construct_gamma_family(graph, source, max_faults)
    if not family:
        raise ProtocolError("the Gamma family is empty; gamma* is undefined")
    # Distinct fault sets frequently produce structurally identical candidate
    # graphs; deduplicate on the canonical signature so each unique graph is
    # solved once (the min-cut cache then absorbs repeats across calls too).
    unique: Dict[tuple, NetworkGraph] = {}
    for candidate_graph in family.values():
        unique.setdefault(graph_signature(candidate_graph), candidate_graph)
    values: List[int] = [
        broadcast_mincut(candidate_graph, source) for candidate_graph in unique.values()
    ]
    return min(values)


def gamma_of_full_graph(graph: NetworkGraph, source: NodeId) -> int:
    """``gamma_1``: the Phase 1 rate on the original network (no disputes yet)."""
    return broadcast_mincut(graph, source)
