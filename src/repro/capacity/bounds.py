"""Theorem 2 (capacity upper bound), Eq. 6 (NAB lower bound) and Theorem 3 (ratios).

All quantities are exact rationals in bits per time unit:

* ``T_NAB(G) = gamma* rho* / (gamma* + rho*)`` — the throughput NAB approaches
  for large ``L`` and ``Q`` (Phase 1 takes ``L / gamma*`` and the Equality
  Check ``L / rho*``; everything else amortises away);
* ``C_BB(G) <= min(gamma*, 2 rho*)`` — no algorithm can beat this;
* Theorem 3: ``T_NAB >= C_BB / 3`` always, and ``T_NAB >= C_BB / 2`` whenever
  ``gamma* <= rho*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.exceptions import ProtocolError
from repro.capacity.gamma_star import gamma_star
from repro.capacity.rho_star import rho_star
from repro.graph.network_graph import NetworkGraph
from repro.types import NodeId


def nab_throughput_lower_bound(gamma_value: int, rho_value: int) -> Fraction:
    """Eq. 6: ``T_NAB = gamma* rho* / (gamma* + rho*)``."""
    if gamma_value < 1 or rho_value < 1:
        raise ProtocolError("gamma* and rho* must be positive")
    return Fraction(gamma_value * rho_value, gamma_value + rho_value)


def capacity_upper_bound(gamma_value: int, rho_value: int) -> Fraction:
    """Theorem 2: ``C_BB <= min(gamma*, 2 rho*)``."""
    if gamma_value < 1 or rho_value < 1:
        raise ProtocolError("gamma* and rho* must be positive")
    return Fraction(min(gamma_value, 2 * rho_value))


def theorem3_guarantee(gamma_value: int, rho_value: int) -> Fraction:
    """The fraction of capacity Theorem 3 guarantees NAB achieves (1/2 or 1/3)."""
    if gamma_value < 1 or rho_value < 1:
        raise ProtocolError("gamma* and rho* must be positive")
    return Fraction(1, 2) if gamma_value <= rho_value else Fraction(1, 3)


@dataclass(frozen=True)
class CapacityAnalysis:
    """The full analytical picture for one network.

    Attributes:
        gamma_star: Worst-case Phase 1 rate over the ``Gamma`` family.
        rho_star: Worst-case Equality Check rate (``U_1 / 2``).
        nab_lower_bound: Eq. 6 throughput lower bound.
        capacity_upper_bound: Theorem 2 upper bound on ``C_BB``.
        guaranteed_fraction: The 1/2 or 1/3 guarantee of Theorem 3.
        achieved_fraction: ``nab_lower_bound / capacity_upper_bound`` — the
            fraction actually certified for this network (always at least
            ``guaranteed_fraction``).
    """

    gamma_star: int
    rho_star: int
    nab_lower_bound: Fraction
    capacity_upper_bound: Fraction
    guaranteed_fraction: Fraction
    achieved_fraction: Fraction

    def satisfies_theorem3(self) -> bool:
        """Whether the certified fraction meets Theorem 3's promise."""
        return self.achieved_fraction >= self.guaranteed_fraction


def analyse_network(graph: NetworkGraph, source: NodeId, max_faults: int) -> CapacityAnalysis:
    """Compute every Theorem 2 / Theorem 3 quantity for one network."""
    gamma_value = gamma_star(graph, source, max_faults)
    rho_value = rho_star(graph, max_faults)
    lower = nab_throughput_lower_bound(gamma_value, rho_value)
    upper = capacity_upper_bound(gamma_value, rho_value)
    return CapacityAnalysis(
        gamma_star=gamma_value,
        rho_star=rho_value,
        nab_lower_bound=lower,
        capacity_upper_bound=upper,
        guaranteed_fraction=theorem3_guarantee(gamma_value, rho_value),
        achieved_fraction=lower / upper,
    )
