"""``rho*``: the worst-case Equality Check rate.

Section 5.1: ``rho* = U_1 / 2`` where ``U_1`` is computed from
``Omega_1`` — the dispute-free ``(n - f)``-node subgraphs of the *original*
network (no disputes have been found before the first instance, so ``Omega_1``
is simply all ``(n - f)``-subsets).  Because later instance graphs only ever
remove links between disputed pairs, ``Omega_k`` is a subset of ``Omega_1``
and ``U_k >= U_1``, so ``rho_k >= rho*`` in every reachable instance.
"""

from __future__ import annotations

from repro.coding.omega import compute_rho, compute_uk, dispute_free_subgraphs
from repro.exceptions import ProtocolError
from repro.graph.network_graph import NetworkGraph


def u1_value(graph: NetworkGraph, max_faults: int) -> int:
    """``U_1``: the minimum pairwise undirected min-cut over all ``(n - f)``-subsets."""
    if max_faults < 0:
        raise ProtocolError(f"max_faults must be non-negative, got {max_faults}")
    node_count = graph.node_count()
    subgraph_size = node_count - max_faults
    if subgraph_size < 2:
        raise ProtocolError(
            f"n - f = {subgraph_size} < 2: the equality check has nothing to compare"
        )
    subgraphs = dispute_free_subgraphs(graph, subgraph_size)
    return compute_uk(graph, subgraphs)


def rho_star(graph: NetworkGraph, max_faults: int) -> int:
    """``rho* = floor(U_1 / 2)``.

    Raises:
        ProtocolError: if ``U_1 < 2`` (the network violates the paper's
            connectivity/capacity preconditions).
    """
    return compute_rho(u1_value(graph, max_faults))
