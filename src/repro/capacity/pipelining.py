"""Pipelining across propagation delays (Appendix D and Figure 3).

The paper's base model has zero propagation delay, but Appendix D notes that
with per-hop propagation a symbol cannot be forwarded before it has been fully
received, so the Phase 1 broadcast effectively advances one hop every
``L / gamma`` time units and the naive per-instance time grows with the
network diameter ``D``.  Figure 3 shows the fix: divide time into rounds of
``L / gamma* + L / rho* + O(n^alpha)`` time units and pipeline the instances,
so instance ``q`` occupies round ``q + hop`` at depth ``hop``; after a fill-in
latency of ``D - 1`` rounds, one instance completes per round and the
throughput of Eq. 6 is recovered.

This module provides exact schedule calculators for both the naive
(unpipelined) and the pipelined execution, which is what the Figure 3
benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.exceptions import ProtocolError


@dataclass(frozen=True)
class PipelineSchedule:
    """Timing summary of running ``Q`` instances under a given schedule.

    Attributes:
        instances: Number of instances ``Q``.
        round_length: Duration of one pipeline round (or of one full instance
            in the unpipelined case), in time units.
        total_time: Total time until the last instance completes.
        throughput: ``Q * L / total_time`` in bits per time unit.
    """

    instances: int
    round_length: Fraction
    total_time: Fraction
    throughput: Fraction


def _validate(total_bits: int, gamma_value: int, rho_value: int, hops: int, instances: int) -> None:
    if total_bits < 1:
        raise ProtocolError("total_bits must be positive")
    if gamma_value < 1 or rho_value < 1:
        raise ProtocolError("gamma and rho must be positive")
    if hops < 1:
        raise ProtocolError("the broadcast depth must be at least one hop")
    if instances < 1:
        raise ProtocolError("at least one instance is required")


def unpipelined_schedule(
    total_bits: int,
    gamma_value: int,
    rho_value: int,
    hops: int,
    instances: int,
    flag_overhead: Fraction | int = 0,
) -> PipelineSchedule:
    """Naive execution: each instance waits for the previous one to finish completely.

    With propagation delay the Phase 1 data needs ``hops * L / gamma`` time to
    reach the deepest node, followed by ``L / rho`` for the equality check and
    the fixed flag-broadcast overhead.
    """
    _validate(total_bits, gamma_value, rho_value, hops, instances)
    per_instance = (
        Fraction(total_bits, gamma_value) * hops
        + Fraction(total_bits, rho_value)
        + Fraction(flag_overhead)
    )
    total = per_instance * instances
    return PipelineSchedule(
        instances=instances,
        round_length=per_instance,
        total_time=total,
        throughput=Fraction(total_bits * instances) / total,
    )


def pipelined_schedule(
    total_bits: int,
    gamma_value: int,
    rho_value: int,
    hops: int,
    instances: int,
    flag_overhead: Fraction | int = 0,
) -> PipelineSchedule:
    """Figure 3's pipelined execution.

    Every round lasts ``L / gamma + L / rho + overhead``; instance ``q``'s
    Phase 1 data advances one hop per round, so the last instance finishes at
    round ``instances + hops - 1``.
    """
    _validate(total_bits, gamma_value, rho_value, hops, instances)
    round_length = (
        Fraction(total_bits, gamma_value)
        + Fraction(total_bits, rho_value)
        + Fraction(flag_overhead)
    )
    total = round_length * (instances + hops - 1)
    return PipelineSchedule(
        instances=instances,
        round_length=round_length,
        total_time=total,
        throughput=Fraction(total_bits * instances) / total,
    )


def pipelining_speedup(
    total_bits: int,
    gamma_value: int,
    rho_value: int,
    hops: int,
    instances: int,
    flag_overhead: Fraction | int = 0,
) -> Fraction:
    """Ratio of pipelined to unpipelined throughput (``>= 1``, grows with hops and Q)."""
    naive = unpipelined_schedule(total_bits, gamma_value, rho_value, hops, instances, flag_overhead)
    piped = pipelined_schedule(total_bits, gamma_value, rho_value, hops, instances, flag_overhead)
    return piped.throughput / naive.throughput
