"""Throughput and capacity analysis (Section 5 and Appendices D–G of the paper).

The quantities implemented here are the ones the paper's main theorems are
stated in terms of:

* ``gamma*`` — the worst-case Phase 1 rate over every graph ``G_k`` that NAB
  could ever run on (the family ``Gamma`` of Appendix E);
* ``rho* = U_1 / 2`` — the worst-case Equality Check rate (Appendix C.2 shows
  ``U_k >= U_1`` for every reachable ``G_k``);
* the NAB throughput lower bound ``T_NAB = gamma* rho* / (gamma* + rho*)``
  (Eq. 6);
* the capacity upper bound ``C_BB <= min(gamma*, 2 rho*)`` (Theorem 2);
* the resulting constant-factor guarantees of Theorem 3 (``>= 1/3`` always,
  ``>= 1/2`` when ``gamma* <= rho*``);
* the pipelined schedule of Appendix D / Figure 3 that hides propagation
  delays across multi-hop networks.
"""

from repro.capacity.bounds import (
    CapacityAnalysis,
    analyse_network,
    capacity_upper_bound,
    nab_throughput_lower_bound,
    theorem3_guarantee,
)
from repro.capacity.gamma_star import construct_gamma_family, gamma_star
from repro.capacity.pipelining import PipelineSchedule, pipelined_schedule, unpipelined_schedule
from repro.capacity.rho_star import rho_star, u1_value

__all__ = [
    "gamma_star",
    "construct_gamma_family",
    "rho_star",
    "u1_value",
    "capacity_upper_bound",
    "nab_throughput_lower_bound",
    "theorem3_guarantee",
    "CapacityAnalysis",
    "analyse_network",
    "PipelineSchedule",
    "pipelined_schedule",
    "unpipelined_schedule",
]
