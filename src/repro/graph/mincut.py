"""Min-cut quantities used throughout the paper's analysis.

Three quantities appear repeatedly:

* ``MINCUT(G, i, j)`` — the directed ``i``-``j`` min-cut of the instance graph,
  equal to the ``i``-``j`` max-flow (:func:`st_mincut`);
* ``gamma_k = min_j MINCUT(G_k, 1, j)`` — the broadcast min-cut from the
  source, which is the highest rate at which Phase 1 can deliver the input to
  every node (:func:`broadcast_mincut`);
* ``min_{i,j} MINCUT(\\bar H, i, j)`` — the smallest pairwise min-cut of an
  undirected view, the inner minimum of ``U_k``
  (:func:`min_pairwise_undirected_mincut`).
"""

from __future__ import annotations

from typing import Dict

from repro.exceptions import GraphError
from repro.graph.flow_cache import cached_all_target_mincuts, cached_st_mincut
from repro.graph.network_graph import NetworkGraph
from repro.graph.undirected import UndirectedView
from repro.types import NodeId


def st_mincut(graph: NetworkGraph, source: NodeId, sink: NodeId) -> int:
    """``MINCUT(G, source, sink)`` — the directed min-cut / max-flow value.

    Memoised on the graph's canonical signature, so repeated queries on
    structurally identical graphs are dictionary lookups.
    """
    return cached_st_mincut(graph, source, sink)


def all_target_mincuts(graph: NetworkGraph, source: NodeId) -> Dict[NodeId, int]:
    """``MINCUT(G, source, j)`` for every other node ``j`` of the graph.

    Memoised as a whole; on a miss all targets share one residual-graph
    build instead of reconstructing the solver per target.
    """
    return cached_all_target_mincuts(graph, source)


def broadcast_mincut(graph: NetworkGraph, source: NodeId) -> int:
    """``gamma = min_j MINCUT(G, source, j)`` — the broadcast (multicast) capacity.

    By Edmonds' theorem this is also the maximum number of capacity-disjoint
    spanning arborescences rooted at ``source``, i.e. the rate at which
    Phase 1 can broadcast unreliably.

    Raises:
        GraphError: if the source is missing or the graph has no other node.
    """
    if not graph.has_node(source):
        raise GraphError(f"source {source} is not in the graph")
    if graph.node_count() < 2:
        raise GraphError("broadcast min-cut needs at least one node besides the source")
    # On an undirected-equivalent graph the broadcast min-cut equals the
    # *global* undirected min-cut for every source (min_j mincut(s, j) is at
    # least the global minimum, and every global cut separates the source
    # from someone), which one Gomory-Hu tree answers for all sources at
    # once — including decrementally repaired trees along the dispute path.
    from repro.graph.gomory_hu import cached_global_mincut

    value = cached_global_mincut(graph)
    if value is not None:
        return value
    cuts = all_target_mincuts(graph, source)
    return min(cuts.values())


def min_pairwise_undirected_mincut(graph: NetworkGraph) -> int:
    """Smallest pairwise min-cut of the undirected, capacity-summed view of ``graph``."""
    return UndirectedView(graph).min_pairwise_mincut()
