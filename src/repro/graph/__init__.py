"""Capacitated-graph substrate used by every protocol in the library.

The paper models the network as a synchronous point-to-point network
``G(V, E)`` where each directed link ``e`` has a positive integer capacity
``z_e`` (bits per unit time).  This package provides:

* :class:`repro.graph.network_graph.NetworkGraph` — the directed capacitated
  simple graph with subgraph/removal operations used by NAB's graph evolution.
* :class:`repro.graph.undirected.UndirectedView` — the undirected graph
  ``\\bar H`` with summed link capacities used to define ``U_k``.
* :mod:`repro.graph.maxflow` / :mod:`repro.graph.mincut` — Dinic's max-flow and
  the min-cut quantities ``MINCUT(G, i, j)`` and ``gamma(G, source)``.
* :mod:`repro.graph.flow_cache` — the process-wide LRU cache of solved
  min-cut values keyed on canonical graph signatures; the capacity layer's
  repeated sweeps hit this instead of re-running Dinic.
* :mod:`repro.graph.gomory_hu` — Gomory-Hu cut trees: all-pairs min-cuts of
  undirected-equivalent graphs from ``n - 1`` flows, with exact decremental
  repair along the dispute path (asymmetric graphs fall back to the frozen
  per-pair Dinic oracle).
* :mod:`repro.graph.connectivity` — vertex connectivity and the ``2f + 1``
  connectivity requirement, plus vertex-disjoint path extraction.
* :mod:`repro.graph.spanning_trees` — constructive packing of capacity-disjoint
  spanning arborescences (Phase 1's unreliable broadcast transport).
* :mod:`repro.graph.generators` — the paper's example networks and synthetic
  topology generators used by the workloads and benchmarks.
"""

from repro.graph.connectivity import (
    has_vertex_connectivity_at_least,
    vertex_connectivity,
    vertex_disjoint_paths,
)
from repro.graph.flow_cache import (
    cached_max_flow_with_cut,
    clear_mincut_cache,
    graph_signature,
    cache_stats,
    mincut_cache_stats,
)
from repro.graph.gomory_hu import (
    GomoryHuTree,
    cached_gomory_hu,
    clear_gomory_hu_cache,
    gomory_hu_cache_stats,
    gomory_hu_tree,
    incremental_repair_stats,
)
from repro.graph.maxflow import all_max_flow_values, max_flow_value, max_flow_with_cut
from repro.graph.mincut import broadcast_mincut, min_pairwise_undirected_mincut, st_mincut
from repro.graph.network_graph import NetworkGraph
from repro.graph.spanning_trees import (
    clear_pack_cache,
    pack_arborescences,
    pack_cache_stats,
)
from repro.graph.undirected import UndirectedView

__all__ = [
    "NetworkGraph",
    "UndirectedView",
    "max_flow_value",
    "all_max_flow_values",
    "max_flow_with_cut",
    "cached_max_flow_with_cut",
    "st_mincut",
    "broadcast_mincut",
    "min_pairwise_undirected_mincut",
    "graph_signature",
    "clear_mincut_cache",
    "mincut_cache_stats",
    "cache_stats",
    "GomoryHuTree",
    "gomory_hu_tree",
    "cached_gomory_hu",
    "clear_gomory_hu_cache",
    "gomory_hu_cache_stats",
    "incremental_repair_stats",
    "vertex_connectivity",
    "has_vertex_connectivity_at_least",
    "vertex_disjoint_paths",
    "pack_arborescences",
    "clear_pack_cache",
    "pack_cache_stats",
]
