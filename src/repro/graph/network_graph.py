"""The directed, capacitated, simple network graph ``G(V, E)``.

This is the central data structure of the library: the point-to-point network
on which NAB runs.  It matches the paper's network model exactly:

* vertices are node identifiers (integers);
* edges are *directed* and simple (at most one edge per ordered pair, no
  self-loops);
* each edge ``e`` carries a positive integer capacity ``z_e`` expressed in
  bits per time unit.

The class also provides the graph-surgery operations that NAB's graph
evolution needs (removing nodes found faulty, removing links between disputed
node pairs, taking induced subgraphs for the ``Omega_k`` enumeration), all of
which return new graphs and never mutate the original once it has been
frozen via :meth:`NetworkGraph.freeze`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Set, Tuple

from repro.exceptions import GraphError
from repro.types import Edge, NodeId, NodePair, node_pair


class NetworkGraph:
    """A directed simple graph with positive integer edge capacities."""

    def __init__(self) -> None:
        self._successors: Dict[NodeId, Dict[NodeId, int]] = {}
        self._predecessors: Dict[NodeId, Dict[NodeId, int]] = {}
        self._frozen = False

    # ----------------------------------------------------------- construction

    @classmethod
    def from_edges(
        cls, edges: Mapping[Edge, int] | Iterable[Tuple[NodeId, NodeId, int]]
    ) -> "NetworkGraph":
        """Build a graph from ``{(tail, head): capacity}`` or ``(tail, head, capacity)`` triples."""
        graph = cls()
        if isinstance(edges, Mapping):
            items: Iterable[Tuple[NodeId, NodeId, int]] = (
                (tail, head, capacity) for (tail, head), capacity in edges.items()
            )
        else:
            items = edges
        for tail, head, capacity in items:
            graph.add_edge(tail, head, capacity)
        return graph

    def _require_mutable(self) -> None:
        if self._frozen:
            raise GraphError("graph is frozen; derive a copy before mutating")

    def add_node(self, node: NodeId) -> None:
        """Add an isolated node (no-op if it already exists)."""
        self._require_mutable()
        self._successors.setdefault(node, {})
        self._predecessors.setdefault(node, {})

    def add_edge(self, tail: NodeId, head: NodeId, capacity: int) -> None:
        """Add a directed edge with the given positive integer capacity.

        Raises:
            GraphError: on self loops, non-positive or non-integer capacities,
                or duplicate edges (the graph is simple).
        """
        self._require_mutable()
        if tail == head:
            raise GraphError(f"self loops are not allowed (node {tail})")
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity <= 0:
            raise GraphError(f"capacity must be a positive integer, got {capacity!r}")
        self.add_node(tail)
        self.add_node(head)
        if head in self._successors[tail]:
            raise GraphError(f"duplicate edge ({tail}, {head}); the graph is simple")
        self._successors[tail][head] = capacity
        self._predecessors[head][tail] = capacity

    def freeze(self) -> "NetworkGraph":
        """Mark the graph immutable and return it (for fluent use)."""
        self._frozen = True
        return self

    @property
    def is_frozen(self) -> bool:
        """Whether the graph has been frozen against further mutation."""
        return self._frozen

    def copy(self) -> "NetworkGraph":
        """Return a mutable deep copy of this graph."""
        clone = NetworkGraph()
        for node in self._successors:
            clone.add_node(node)
        for tail, head, capacity in self.edges():
            clone.add_edge(tail, head, capacity)
        return clone

    # -------------------------------------------------------------- accessors

    def nodes(self) -> List[NodeId]:
        """All node identifiers, in sorted order."""
        return sorted(self._successors)

    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._successors)

    def edge_count(self) -> int:
        """Number of directed edges."""
        return sum(len(targets) for targets in self._successors.values())

    def has_node(self, node: NodeId) -> bool:
        """Whether the node exists in the graph."""
        return node in self._successors

    def has_edge(self, tail: NodeId, head: NodeId) -> bool:
        """Whether the directed edge ``(tail, head)`` exists."""
        return tail in self._successors and head in self._successors[tail]

    def capacity(self, tail: NodeId, head: NodeId) -> int:
        """Capacity of the directed edge ``(tail, head)``.

        Raises:
            GraphError: if the edge does not exist.
        """
        try:
            return self._successors[tail][head]
        except KeyError:
            raise GraphError(f"edge ({tail}, {head}) is not in the graph") from None

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, int]]:
        """Iterate over ``(tail, head, capacity)`` triples in sorted order."""
        for tail in sorted(self._successors):
            for head in sorted(self._successors[tail]):
                yield tail, head, self._successors[tail][head]

    def edge_set(self) -> Set[Edge]:
        """The set of directed edges as ``(tail, head)`` pairs."""
        return {(tail, head) for tail, head, _ in self.edges()}

    def successors(self, node: NodeId) -> List[NodeId]:
        """Heads of edges leaving ``node`` in sorted order."""
        self._require_node(node)
        return sorted(self._successors[node])

    def predecessors(self, node: NodeId) -> List[NodeId]:
        """Tails of edges entering ``node`` in sorted order."""
        self._require_node(node)
        return sorted(self._predecessors[node])

    def out_edges(self, node: NodeId) -> List[Tuple[NodeId, NodeId, int]]:
        """Outgoing ``(tail, head, capacity)`` triples of ``node`` in sorted order."""
        self._require_node(node)
        return [(node, head, cap) for head, cap in sorted(self._successors[node].items())]

    def in_edges(self, node: NodeId) -> List[Tuple[NodeId, NodeId, int]]:
        """Incoming ``(tail, head, capacity)`` triples of ``node`` in sorted order."""
        self._require_node(node)
        return [(tail, node, cap) for tail, cap in sorted(self._predecessors[node].items())]

    def out_capacity(self, node: NodeId) -> int:
        """Total capacity leaving ``node``."""
        self._require_node(node)
        return sum(self._successors[node].values())

    def in_capacity(self, node: NodeId) -> int:
        """Total capacity entering ``node``."""
        self._require_node(node)
        return sum(self._predecessors[node].values())

    def total_capacity(self) -> int:
        """Sum of the capacities of all directed edges."""
        return sum(capacity for _, _, capacity in self.edges())

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Nodes adjacent to ``node`` by an edge in either direction (sorted)."""
        self._require_node(node)
        return sorted(set(self._successors[node]) | set(self._predecessors[node]))

    def _require_node(self, node: NodeId) -> None:
        if node not in self._successors:
            raise GraphError(f"node {node} is not in the graph")

    # ----------------------------------------------------------- graph surgery

    def induced_subgraph(self, nodes: Iterable[NodeId]) -> "NetworkGraph":
        """The subgraph induced by ``nodes`` (edges with both endpoints kept).

        Raises:
            GraphError: if any requested node is absent from the graph.
        """
        keep = set(nodes)
        for node in keep:
            self._require_node(node)
        subgraph = NetworkGraph()
        for node in keep:
            subgraph.add_node(node)
        for tail, head, capacity in self.edges():
            if tail in keep and head in keep:
                subgraph.add_edge(tail, head, capacity)
        return subgraph

    def remove_nodes(self, nodes: Iterable[NodeId]) -> "NetworkGraph":
        """A new graph without the given nodes (and their incident edges).

        Nodes not present are ignored, which is convenient when applying a set
        of identified-faulty nodes to successive instance graphs.
        """
        drop = set(nodes)
        keep = [node for node in self.nodes() if node not in drop]
        return self.induced_subgraph(keep)

    def remove_edges(self, edges: Iterable[Edge]) -> "NetworkGraph":
        """A new graph without the given directed edges (missing edges ignored)."""
        drop = set(edges)
        result = NetworkGraph()
        for node in self.nodes():
            result.add_node(node)
        for tail, head, capacity in self.edges():
            if (tail, head) not in drop:
                result.add_edge(tail, head, capacity)
        return result

    def remove_links_between(self, pairs: Iterable[NodePair]) -> "NetworkGraph":
        """A new graph with both directions removed for each unordered node pair.

        This is the operation dispute control applies: for a node pair found
        in dispute, the links between them (in both directions) are excluded
        from the next instance graph.
        """
        pair_set = {frozenset(pair) for pair in pairs}
        drop: Set[Edge] = set()
        for tail, head, _ in self.edges():
            if node_pair(tail, head) in pair_set:
                drop.add((tail, head))
        return self.remove_edges(drop)

    # ------------------------------------------------------------- traversals

    def reachable_from(self, source: NodeId) -> Set[NodeId]:
        """All nodes reachable from ``source`` along directed edges (including itself)."""
        self._require_node(source)
        seen = {source}
        frontier = [source]
        while frontier:
            node = frontier.pop()
            for successor in self._successors[node]:
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    def is_spanning_from(self, source: NodeId) -> bool:
        """Whether every node is reachable from ``source``."""
        return len(self.reachable_from(source)) == self.node_count()

    def is_weakly_connected(self) -> bool:
        """Whether the underlying undirected graph is connected."""
        nodes = self.nodes()
        if not nodes:
            return True
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            node = frontier.pop()
            for neighbor in self.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(nodes)

    # ------------------------------------------------------------------ dunder

    def __contains__(self, node: object) -> bool:
        return node in self._successors

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetworkGraph):
            return NotImplemented
        return (
            set(self.nodes()) == set(other.nodes())
            and dict(((t, h), c) for t, h, c in self.edges())
            == dict(((t, h), c) for t, h, c in other.edges())
        )

    def __hash__(self) -> int:
        return hash((tuple(self.nodes()), tuple(self.edges())))

    def __repr__(self) -> str:
        return f"NetworkGraph(nodes={self.node_count()}, edges={self.edge_count()})"
