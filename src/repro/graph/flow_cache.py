"""Memoised min-cut evaluation keyed on canonical graph signatures.

The capacity layer solves the *same* max-flow problems over and over:
``gamma_star`` sweeps a family of candidate subgraphs many of which coincide,
``rho_star`` / ``compute_uk`` revisit identical induced subgraphs across
instances, and benchmark sweeps re-analyse one fixed network per parameter
point.  Dinic is fast, but re-solving identical flows dominates wall time at
scale.  This module provides a process-wide LRU cache mapping a *canonical
graph signature* (sorted nodes + sorted capacitated edges) plus the query
endpoints to the solved value, so any structurally identical query is a
dictionary lookup.

The cache is bounded (LRU eviction) and purely value-based: ``NetworkGraph``
instances are never retained, only their signatures, so caching cannot leak
graphs or observe mutation.  ``clear_mincut_cache`` resets it (useful in
tests and long-lived processes switching workloads).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Set, Tuple

from repro.exceptions import GraphError
from repro.graph.maxflow import all_max_flow_values, max_flow_value, max_flow_with_cut
from repro.graph.network_graph import NetworkGraph
from repro.types import NodeId

#: Default bound on the number of cached flow solutions.
DEFAULT_MAX_ENTRIES = 8192

#: Canonical signature type: (sorted node tuple, sorted (tail, head, cap) tuple).
GraphSignature = Tuple[Tuple[NodeId, ...], Tuple[Tuple[NodeId, NodeId, int], ...]]


def graph_signature(graph: NetworkGraph) -> GraphSignature:
    """A hashable canonical signature of a graph's nodes, edges and capacities.

    Two graphs have equal signatures iff they are equal as capacitated
    directed graphs, so the signature is a sound cache key for any quantity
    determined by graph structure alone.
    """
    return (tuple(graph.nodes()), tuple(graph.edges()))


class MinCutCache:
    """A bounded LRU cache from hashable flow-query keys to solved values."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Counters that survive :meth:`clear`, so a sweep that clears the
        #: cache between topologies can still report its overall efficacy.
        self.lifetime_hits = 0
        self.lifetime_misses = 0

    def lookup(self, key: Hashable):
        """Return the cached value for ``key`` or ``None``, updating LRU order."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            self.lifetime_misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.lifetime_hits += 1
        return value

    def peek(self, key: Hashable):
        """Return the cached value for ``key`` or ``None``, counting nothing.

        For opportunistic probes ("is a solved structure already here?") that
        must not skew the hit/miss statistics of callers who did not commit
        to this cache answering their query.  LRU order is still refreshed on
        a hit, so peeked-at structures stay warm.
        """
        try:
            value = self._entries[key]
        except KeyError:
            return None
        self._entries.move_to_end(key)
        return value

    def store(self, key: Hashable, value) -> None:
        """Insert ``key -> value``, evicting least-recently-used entries."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters.

        The ``lifetime_*`` counters are deliberately kept: they track cache
        efficacy across clears (e.g. over a whole multi-topology sweep).
        """
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, object]:
        """Counters plus derived hit rates, the shape every cache's
        ``*_cache_stats`` helper reports.

        ``hits``/``misses`` count since the last :meth:`clear`; the
        ``lifetime_*`` counters survive clears.  Hit rates are floats,
        ``None`` before any lookup.
        """
        lookups = self.hits + self.misses
        lifetime = self.lifetime_hits + self.lifetime_misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / lookups) if lookups else None,
            "lifetime_hits": self.lifetime_hits,
            "lifetime_misses": self.lifetime_misses,
            "lifetime_hit_rate": (self.lifetime_hits / lifetime) if lifetime else None,
        }

    def __len__(self) -> int:
        return len(self._entries)


_CACHE = MinCutCache()


def mincut_cache() -> MinCutCache:
    """The process-wide flow-solution cache."""
    return _CACHE


def clear_mincut_cache() -> None:
    """Reset the process-wide flow-solution cache."""
    _CACHE.clear()


def mincut_cache_stats() -> Dict[str, int]:
    """Current ``{"entries", "hits", "misses"}`` counters of the cache.

    The minimal epoch-scoped counters (reset by :func:`clear_mincut_cache`).
    :func:`cache_stats` builds on this and adds derived rates plus the
    clear-surviving lifetime counters — prefer it for reporting.
    """
    return {"entries": len(_CACHE), "hits": _CACHE.hits, "misses": _CACHE.misses}


def cache_stats() -> Dict[str, object]:
    """Hit/miss counters plus derived hit rates, for benchmark artifacts.

    Returns ``{"entries", "hits", "misses", "hit_rate", "lifetime_hits",
    "lifetime_misses", "lifetime_hit_rate"}``.  ``hits``/``misses`` count
    since the last :func:`clear_mincut_cache`; the ``lifetime_*`` counters
    survive clears (workloads like the engine runner clear the cache between
    topologies — the lifetime counters still measure the whole sweep).  Hit
    rates are floats, ``None`` before any lookup.
    """
    return _CACHE.stats()


def seed_st_mincut(
    signature: GraphSignature, source: NodeId, sink: NodeId, value: int
) -> None:
    """Seed the plain ``("st", ...)`` value key from an externally solved flow.

    Used by the Gomory–Hu layer so tree-derived values and value-only queries
    share one cache namespace: a later :func:`cached_st_mincut` on the same
    endpoints is a hit without re-solving.
    """
    _CACHE.store(("st", signature, source, sink), value)


def seed_max_flow_with_cut(
    signature: GraphSignature,
    source: NodeId,
    sink: NodeId,
    value: int,
    cut,
) -> None:
    """Seed both the ``("st-cut", ...)`` and plain ``("st", ...)`` keys.

    ``cut`` is the source side of a minimum cut; it is stored as a
    ``frozenset`` (the cached_max_flow_with_cut invariant).  Seeding the
    plain value key too keeps the namespaces shared regardless of which
    query arrives first.
    """
    _CACHE.store(("st-cut", signature, source, sink), (value, frozenset(cut)))
    _CACHE.store(("st", signature, source, sink), value)


def cached_st_mincut(
    graph: NetworkGraph,
    source: NodeId,
    sink: NodeId,
    signature: GraphSignature | None = None,
) -> int:
    """``MINCUT(G, source, sink)`` through the cache.

    On a miss, an *already cached* Gomory–Hu tree for this signature answers
    the query as a tree-path minimum (a single ``st`` query never justifies
    building one); otherwise the per-pair Dinic oracle solves it.

    Raises:
        GraphError: if either endpoint is missing or they coincide.
    """
    if not graph.has_node(source) or not graph.has_node(sink):
        raise GraphError("source or sink not present in the graph")
    if source == sink:
        raise GraphError("source and sink must differ")
    if signature is None:
        signature = graph_signature(graph)
    key = ("st", signature, source, sink)
    value = _CACHE.lookup(key)
    if value is None:
        from repro.graph.gomory_hu import tree_if_cached

        tree = tree_if_cached(signature)
        if tree is not None:
            value = tree.mincut(source, sink)
        else:
            value = max_flow_value(graph, source, sink)
        _CACHE.store(key, value)
    return value


def cached_max_flow_with_cut(
    graph: NetworkGraph,
    source: NodeId,
    sink: NodeId,
    signature: GraphSignature | None = None,
) -> Tuple[int, Set[NodeId]]:
    """Max-flow value *and* the source side of a minimum cut, through the cache.

    The cut set is stored as an immutable ``frozenset`` so cached entries can
    never be mutated through the returned value; callers receive a fresh
    mutable copy.  On a miss the flow value is also seeded under the plain
    ``st`` key, so a later :func:`cached_st_mincut` on the same endpoints is a
    hit without re-solving.

    Raises:
        GraphError: if either endpoint is missing or they coincide.
    """
    if not graph.has_node(source) or not graph.has_node(sink):
        raise GraphError("source or sink not present in the graph")
    if source == sink:
        raise GraphError("source and sink must differ")
    if signature is None:
        signature = graph_signature(graph)
    key = ("st-cut", signature, source, sink)
    cached = _CACHE.lookup(key)
    if cached is None:
        value, cut = max_flow_with_cut(graph, source, sink)
        cached = (value, frozenset(cut))
        _CACHE.store(key, cached)
        _CACHE.store(("st", signature, source, sink), value)
    return cached[0], set(cached[1])


def cached_all_target_mincuts(
    graph: NetworkGraph,
    source: NodeId,
    signature: GraphSignature | None = None,
) -> Dict[NodeId, int]:
    """``MINCUT(G, source, j)`` for every ``j != source``, through the cache.

    A single residual-graph build is shared across all targets on a miss
    (see :func:`repro.graph.maxflow.all_max_flow_values`).  The returned dict
    is a fresh copy the caller may mutate freely.

    Raises:
        GraphError: if the source is not in the graph.
    """
    if not graph.has_node(source):
        raise GraphError(f"source {source} is not in the graph")
    if signature is None:
        signature = graph_signature(graph)
    key = ("all-targets", signature, source)
    cached = _CACHE.lookup(key)
    if cached is None:
        from repro.graph.gomory_hu import cached_gomory_hu

        tree = cached_gomory_hu(graph, signature=signature)
        if tree is not None and tree.node_count() > 1:
            # Undirected-equivalent graph: n - 1 solves build the tree once,
            # then every source is a single tree walk.
            cached = tree.all_target_mincuts(source)
        else:
            targets = [node for node in graph.nodes() if node != source]
            cached = all_max_flow_values(graph, source, targets)
        _CACHE.store(key, cached)
    return dict(cached)
