"""Packing capacity-disjoint spanning arborescences (Phase 1 transport).

Appendix A of the paper relies on the classical result (Edmonds' disjoint
arborescence theorem, cited via [16]) that a directed graph ``G_k`` with
``gamma_k = min_j MINCUT(G_k, 1, j)`` contains ``gamma_k`` unit-capacity
spanning trees rooted at the source such that the combined usage of every link
stays within its capacity.  Phase 1 then ships one ``L / gamma_k``-bit symbol
down each tree.

This module provides a *constructive* packing: arborescences are peeled off
one at a time following Lovász's proof of Edmonds' theorem.  While growing an
arborescence we only add an edge ``(u, v)`` (from a spanned vertex ``u`` to an
unspanned ``v``) if removing one unit of its capacity keeps
``MINCUT(root, w) >= remaining`` for every other vertex ``w``, where
``remaining`` is the number of arborescences still to be packed afterwards.
Lovász's lemma guarantees that such an edge always exists, so the peeling
never gets stuck as long as the initial min-cut condition holds.

Performance notes:
    The peeling is expensive (hundreds of max-flow feasibility probes), yet a
    NAB run re-packs the *same* instance graph for every instance until the
    dispute state changes it.  Packings are therefore memoised process-wide in
    an LRU keyed on ``(graph_signature, root, count)`` — the same canonical-
    signature contract as :mod:`repro.graph.flow_cache` — and the feasibility
    probes themselves run through the min-cut cache, so even a cold packing
    shares solves with every other analysis of the same graph.
    :func:`clear_pack_cache` resets the packing cache (the engine runner calls
    it between topologies) and :func:`pack_cache_stats` exposes its counters.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.exceptions import GraphError, InfeasibleError
from repro.graph.flow_cache import (
    MinCutCache,
    cached_all_target_mincuts,
    graph_signature,
)
from repro.graph.mincut import broadcast_mincut
from repro.graph.network_graph import NetworkGraph
from repro.types import Edge, NodeId


class Arborescence:
    """A spanning arborescence rooted at ``root``, stored as child -> parent."""

    def __init__(self, root: NodeId, parents: Dict[NodeId, NodeId]) -> None:
        self.root = root
        self.parents = dict(parents)

    def edges(self) -> List[Edge]:
        """Directed tree edges as ``(parent, child)`` pairs, sorted by child."""
        return [(parent, child) for child, parent in sorted(self.parents.items())]

    def nodes(self) -> List[NodeId]:
        """All vertices spanned by the arborescence (root included), sorted."""
        return sorted(set(self.parents) | {self.root})

    def children_of(self, node: NodeId) -> List[NodeId]:
        """Children of ``node`` in the arborescence, sorted."""
        return sorted(child for child, parent in self.parents.items() if parent == node)

    def depth_of(self, node: NodeId) -> int:
        """Number of edges on the path from the root to ``node``."""
        depth = 0
        current = node
        while current != self.root:
            current = self.parents[current]
            depth += 1
            if depth > len(self.parents) + 1:
                raise GraphError("arborescence parent map contains a cycle")
        return depth

    def path_from_root(self, node: NodeId) -> List[NodeId]:
        """The node sequence from the root to ``node`` (inclusive)."""
        path = [node]
        while path[-1] != self.root:
            path.append(self.parents[path[-1]])
        return list(reversed(path))

    def depth(self) -> int:
        """Maximum depth over all spanned vertices (0 for a single-node tree)."""
        if not self.parents:
            return 0
        return max(self.depth_of(node) for node in self.parents)

    def __repr__(self) -> str:
        return f"Arborescence(root={self.root}, nodes={len(self.parents) + 1})"


def _residual_copy(graph: NetworkGraph) -> Dict[Edge, int]:
    return {(tail, head): capacity for tail, head, capacity in graph.edges()}


def _graph_from_capacities(nodes: Sequence[NodeId], capacities: Dict[Edge, int]) -> NetworkGraph:
    graph = NetworkGraph()
    for node in nodes:
        graph.add_node(node)
    for (tail, head), capacity in capacities.items():
        if capacity > 0:
            graph.add_edge(tail, head, capacity)
    return graph


def _satisfies_mincut(
    nodes: Sequence[NodeId],
    capacities: Dict[Edge, int],
    root: NodeId,
    threshold: int,
) -> bool:
    """Whether ``MINCUT(root, w) >= threshold`` for every other vertex ``w``.

    Routed through the process-wide min-cut cache: peeling repeatedly probes
    the same residual capacity states (every rejected candidate edge is
    restored, and successive packings of one instance graph replay the same
    sequence), so structurally identical probes become dictionary lookups.
    """
    if threshold <= 0:
        return True
    graph = _graph_from_capacities(nodes, capacities)
    cuts = cached_all_target_mincuts(graph, root)
    return all(
        cuts[node] >= threshold
        for node in nodes
        if node != root
    )


def _peel_one_arborescence(
    nodes: Sequence[NodeId],
    capacities: Dict[Edge, int],
    root: NodeId,
    remaining_after: int,
) -> Arborescence:
    """Extract one spanning arborescence, preserving min-cut >= ``remaining_after``.

    Mutates ``capacities`` in place by decrementing each used edge by one unit.
    """
    spanned = {root}
    parents: Dict[NodeId, NodeId] = {}
    total_nodes = len(nodes)
    while len(spanned) < total_nodes:
        chosen: Edge | None = None
        for (tail, head), capacity in sorted(capacities.items()):
            if capacity <= 0 or tail not in spanned or head in spanned:
                continue
            capacities[(tail, head)] = capacity - 1
            if _satisfies_mincut(nodes, capacities, root, remaining_after):
                chosen = (tail, head)
                break
            capacities[(tail, head)] = capacity
        if chosen is None:
            raise InfeasibleError(
                "arborescence peeling got stuck; the min-cut precondition does not hold"
            )
        parents[chosen[1]] = chosen[0]
        spanned.add(chosen[1])
    return Arborescence(root, parents)


#: Process-wide memo of arborescence packings.  Values are tuples of
#: child -> parent maps (never handed out directly: every lookup constructs
#: fresh :class:`Arborescence` objects, which copy the maps, so cached
#: packings cannot be mutated through a returned tree).
_PACK_CACHE = MinCutCache(max_entries=256)


def pack_cache_stats() -> Dict[str, object]:
    """Hit/miss counters of the packing cache (``MinCutCache.stats`` shape).

    The ``lifetime_*`` counters survive :func:`clear_pack_cache`, so a sweep
    that clears between topologies can still report whole-run efficacy.
    """
    return _PACK_CACHE.stats()


def clear_pack_cache() -> None:
    """Reset the process-wide arborescence-packing cache."""
    _PACK_CACHE.clear()


def pack_arborescences(
    graph: NetworkGraph, root: NodeId, count: int | None = None
) -> List[Arborescence]:
    """Pack ``count`` capacity-disjoint spanning arborescences rooted at ``root``.

    Args:
        graph: The directed capacitated network.
        root: The root (source) node.
        count: Number of arborescences to pack.  Defaults to the broadcast
            min-cut ``gamma = min_j MINCUT(graph, root, j)``, the maximum
            possible by Edmonds' theorem.

    Returns:
        A list of :class:`Arborescence` objects.  The combined per-edge usage
        (each arborescence uses one capacity unit of each of its edges) never
        exceeds the edge capacities.  Results are memoised on
        ``(graph_signature(graph), root, count)``; the peeling is deterministic,
        so a cached packing is identical to a freshly computed one.

    Raises:
        InfeasibleError: if ``count`` exceeds the broadcast min-cut.
        GraphError: if the root is not a node of the graph or the graph has a
            single node.
    """
    if not graph.has_node(root):
        raise GraphError(f"root {root} is not in the graph")
    if graph.node_count() < 2:
        raise GraphError("packing requires at least two nodes")
    gamma = broadcast_mincut(graph, root)
    if count is None:
        count = gamma
    if count < 1:
        raise InfeasibleError(f"cannot pack {count} arborescences")
    if count > gamma:
        raise InfeasibleError(
            f"requested {count} arborescences but the broadcast min-cut is only {gamma}"
        )
    key = ("pack", graph_signature(graph), root, count)
    cached = _PACK_CACHE.lookup(key)
    if cached is None:
        nodes = graph.nodes()
        capacities = _residual_copy(graph)
        parent_maps: List[Dict[NodeId, NodeId]] = []
        for index in range(count):
            remaining_after = count - index - 1
            parent_maps.append(
                _peel_one_arborescence(nodes, capacities, root, remaining_after).parents
            )
        cached = tuple(parent_maps)
        _PACK_CACHE.store(key, cached)
    return [Arborescence(root, parents) for parents in cached]


def packing_edge_usage(trees: Sequence[Arborescence]) -> Dict[Edge, int]:
    """Total number of arborescences using each directed edge."""
    usage: Dict[Edge, int] = {}
    for tree in trees:
        for edge in tree.edges():
            usage[edge] = usage.get(edge, 0) + 1
    return usage


def validate_packing(
    graph: NetworkGraph, root: NodeId, trees: Sequence[Arborescence]
) -> None:
    """Validate that ``trees`` is a capacity-respecting spanning arborescence packing.

    Raises:
        GraphError: if any tree is not a spanning arborescence of ``graph``
            rooted at ``root``, uses an edge absent from the graph, or the
            combined usage of some edge exceeds its capacity.
    """
    expected_nodes = set(graph.nodes())
    for tree in trees:
        if tree.root != root:
            raise GraphError(f"arborescence rooted at {tree.root}, expected {root}")
        if set(tree.nodes()) != expected_nodes:
            raise GraphError("arborescence does not span all graph nodes")
        for parent, child in tree.edges():
            if not graph.has_edge(parent, child):
                raise GraphError(f"arborescence uses edge ({parent}, {child}) not in the graph")
        # Reaching every node from the root also rules out cycles.
        for node in tree.nodes():
            tree.depth_of(node)
    for (tail, head), used in packing_edge_usage(trees).items():
        if used > graph.capacity(tail, head):
            raise GraphError(
                f"edge ({tail}, {head}) used {used} times but has capacity "
                f"{graph.capacity(tail, head)}"
            )
