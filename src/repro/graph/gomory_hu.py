"""Gomory–Hu trees: all-pairs min-cuts from ``n - 1`` max-flow solves.

On an *undirected-equivalent* graph — a directed graph in which every edge
``(u, v, c)`` is matched by its reverse ``(v, u, c)`` — the directed
``s``-``t`` max-flow equals the undirected ``s``-``t`` min-cut, and the full
``n(n-1)/2`` matrix of pairwise min-cuts is captured by a single weighted
spanning tree (Gomory & Hu 1961): the min-cut between any two nodes is the
minimum edge weight on the tree path between them.  This module builds that
tree with Gusfield's simplification (no node contraction; ``n - 1`` Dinic
solves sharing one residual-graph build) and serves three quantities that
previously cost ``O(n)`` to ``O(n^2)`` independent solves each:

* ``all_target_mincuts(source)`` — one tree walk instead of ``n - 1`` flows;
* the *global* undirected min-cut (= ``broadcast_mincut`` on symmetric
  graphs, and the inner minimum of ``U_k``) — the smallest tree edge;
* arbitrary ``st`` queries — a tree path minimum.

Trees are memoised process-wide on :func:`repro.graph.flow_cache.graph_signature`
in a dedicated :class:`~repro.graph.flow_cache.MinCutCache`, following the
structure-cache contract (``clear_gomory_hu_cache`` / ``gomory_hu_cache_stats``).
Every flow solved during construction also seeds the plain ``("st", ...)`` /
``("st-cut", ...)`` keys of the main flow cache, so tree-derived values and
value-only queries share one namespace.

**Oracle freeze.**  Directed / asymmetric graphs never take these paths: they
fall back to the per-pair Dinic solvers in :mod:`repro.graph.maxflow`, which
stay frozen as the correctness oracle (the property tests assert tree values
equal per-pair oracle values on randomized symmetric graphs).

Incremental (decremental) maintenance
-------------------------------------

Dispute control removes the links of one node pair at a time.  Given the
tree of the old graph, :func:`repair_tree_after_pair_removal` recertifies or
locally repairs each tree edge *exactly* instead of re-solving all ``n - 1``
flows.  For a removed pair ``{a, b}`` of per-direction capacity ``c`` and a
tree edge ``(v, p)`` with exact old value ``w`` and stored min-cut side ``S``
(the ``v`` side):

1. if ``S`` separates ``a`` and ``b``, the new value is exactly ``w - c``
   and ``S`` is still a minimum cut (*adjusted*);
2. else if ``mincut(a, b) >= w + c`` in the old graph, the value and cut are
   unchanged (*certified*) — every cut that the removal touches was at least
   ``c`` above ``w``;
3. otherwise that single pair is re-solved on the new graph (*resolved*).

The repaired tree has exact per-edge values, so the *global* min-cut of the
new graph is exact (any spanning tree with exact adjacent-pair values has the
global min-cut as its smallest edge: every cut separates some tree-adjacent
pair).  Arbitrary path-min queries are **not** guaranteed on repaired trees —
they are flagged ``flow_equivalent=False`` and only serve global-min /
tree-edge queries; ``st`` and per-target queries on such graphs fall back to
the Dinic oracle.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graph.flow_cache import (
    GraphSignature,
    MinCutCache,
    graph_signature,
    seed_max_flow_with_cut,
    seed_st_mincut,
)
from repro.graph.maxflow import _DinicSolver, _build_solver
from repro.graph.network_graph import NetworkGraph
from repro.types import NodeId

#: Dedicated process-wide cache for Gomory–Hu structures.  Keys:
#: ``("tree", signature)`` — flow-equivalent trees (full Gusfield builds),
#: ``("tree-partial", signature)`` — repaired trees (exact tree-edge values
#: only), ``("global-min", signature)`` — the global undirected min-cut value.
_GH_CACHE = MinCutCache(max_entries=2048)

#: Decremental-repair outcome counters (see module docstring).  The epoch
#: counters reset with :func:`clear_gomory_hu_cache`; the ``lifetime_*``
#: counters survive clears, mirroring the ``MinCutCache`` convention.
_REPAIR_KEYS = ("pairs", "adjusted", "certified", "resolved")
_repair_epoch: Dict[str, int] = {key: 0 for key in _REPAIR_KEYS}
_repair_lifetime: Dict[str, int] = {key: 0 for key in _REPAIR_KEYS}


def _count_repair(key: str, amount: int = 1) -> None:
    _repair_epoch[key] += amount
    _repair_lifetime[key] += amount


def gomory_hu_cache() -> MinCutCache:
    """The process-wide Gomory–Hu tree cache."""
    return _GH_CACHE


def clear_gomory_hu_cache() -> None:
    """Reset the Gomory–Hu cache and the epoch repair counters."""
    _GH_CACHE.clear()
    for key in _REPAIR_KEYS:
        _repair_epoch[key] = 0


def gomory_hu_cache_stats() -> Dict[str, object]:
    """Hit/miss counters plus derived rates (the structure-cache stats shape)."""
    return _GH_CACHE.stats()


def incremental_repair_stats() -> Dict[str, int]:
    """Decremental-repair outcome counters.

    ``pairs`` counts removed node pairs processed; each tree edge examined
    lands in exactly one of ``adjusted`` (exact ``w - c`` update),
    ``certified`` (proven unchanged) or ``resolved`` (one fresh Dinic solve).
    Epoch counters reset with :func:`clear_gomory_hu_cache`; ``lifetime_*``
    counters survive clears.
    """
    stats = dict(_repair_epoch)
    for key in _REPAIR_KEYS:
        stats[f"lifetime_{key}"] = _repair_lifetime[key]
    return stats


def is_symmetric(graph: NetworkGraph) -> bool:
    """Whether every directed edge has a same-capacity reverse edge.

    Exactly these graphs are *undirected-equivalent*: their directed
    ``s``-``t`` max-flow equals the undirected min-cut of the one-capacity-
    per-link view, which is what makes the Gomory–Hu representation sound.
    """
    capacities = {(tail, head): capacity for tail, head, capacity in graph.edges()}
    return all(
        capacities.get((head, tail)) == capacity
        for (tail, head), capacity in capacities.items()
    )


class GomoryHuTree:
    """A cut tree: ``n - 1`` weighted parent edges capturing pairwise min-cuts.

    Attributes:
        signature: Canonical signature of the graph the values are exact for.
        flow_equivalent: ``True`` for full Gusfield builds — the min-cut of
            *any* node pair equals the minimum edge weight on their tree
            path.  ``False`` for decrementally repaired trees: only the
            per-tree-edge values (and hence :meth:`min_weight`, the global
            undirected min-cut) are guaranteed exact.
    """

    __slots__ = ("signature", "flow_equivalent", "_nodes", "_parent", "_weight", "_side")

    def __init__(
        self,
        signature: GraphSignature,
        nodes: Tuple[NodeId, ...],
        parent: Dict[NodeId, NodeId],
        weight: Dict[NodeId, int],
        side: Dict[NodeId, FrozenSet[NodeId]],
        flow_equivalent: bool,
    ) -> None:
        self.signature = signature
        self.flow_equivalent = flow_equivalent
        self._nodes = nodes
        self._parent = parent
        self._weight = weight
        self._side = side

    # -------------------------------------------------------------- accessors

    def nodes(self) -> Tuple[NodeId, ...]:
        """All nodes, sorted (the graph's node order)."""
        return self._nodes

    def node_count(self) -> int:
        return len(self._nodes)

    def tree_edges(self) -> List[Tuple[NodeId, NodeId, int]]:
        """The ``n - 1`` tree edges as ``(child, parent, exact min-cut value)``."""
        return [
            (node, self._parent[node], self._weight[node])
            for node in self._nodes
            if node in self._parent
        ]

    def cut_side(self, node: NodeId) -> FrozenSet[NodeId]:
        """The ``node`` side of the stored minimum cut for edge ``(node, parent)``.

        Raises:
            GraphError: if ``node`` is the tree root (it has no parent edge).
        """
        if node not in self._side:
            raise GraphError(f"node {node} has no parent edge in the cut tree")
        return self._side[node]

    def min_weight(self) -> int:
        """The global undirected min-cut: the smallest tree edge weight.

        Exact on repaired trees too — every cut of the graph separates some
        tree-adjacent pair, so the minimum over exact adjacent-pair values is
        the global minimum regardless of tree shape.

        Raises:
            GraphError: if the tree has fewer than two nodes.
        """
        if len(self._nodes) < 2:
            raise GraphError("the cut tree has no edges")
        return min(self._weight[node] for node in self._nodes if node in self._parent)

    # ---------------------------------------------------------------- queries

    def mincut(self, u: NodeId, v: NodeId) -> int:
        """Pairwise min-cut: the minimum edge weight on the ``u``–``v`` tree path.

        Raises:
            GraphError: if either node is unknown, the nodes coincide, or the
                tree is a repaired (non-flow-equivalent) structure, on which
                arbitrary path minima are not guaranteed exact.
        """
        if not self.flow_equivalent:
            raise GraphError(
                "repaired cut trees only answer global-min / tree-edge queries"
            )
        if u == v:
            raise GraphError("pairwise min-cut requires two distinct nodes")
        if u not in self._weight and u != self._root():
            raise GraphError(f"node {u} is not in the cut tree")
        if v not in self._weight and v != self._root():
            raise GraphError(f"node {v} is not in the cut tree")
        ancestors: Dict[NodeId, int] = {}
        minimum = None
        node = u
        while node in self._parent:
            ancestors[node] = 0
            node = self._parent[node]
        ancestors[node] = 0
        node, running = v, None
        while node not in ancestors:
            running = self._weight[node] if running is None else min(running, self._weight[node])
            node = self._parent[node]
        meet = node
        node = u
        while node != meet:
            minimum = self._weight[node] if minimum is None else min(minimum, self._weight[node])
            node = self._parent[node]
        if running is not None:
            minimum = running if minimum is None else min(minimum, running)
        if minimum is None:  # pragma: no cover - u == v is rejected above
            raise GraphError("empty tree path")
        return minimum

    def all_target_mincuts(self, source: NodeId) -> Dict[NodeId, int]:
        """``mincut(source, j)`` for every other node, in one tree walk.

        Raises:
            GraphError: if the source is unknown or the tree is repaired.
        """
        if not self.flow_equivalent:
            raise GraphError(
                "repaired cut trees only answer global-min / tree-edge queries"
            )
        if source not in self._weight and source != self._root():
            raise GraphError(f"source {source} is not in the cut tree")
        children: Dict[NodeId, List[NodeId]] = {node: [] for node in self._nodes}
        for node, parent in self._parent.items():
            children[parent].append(node)
        values: Dict[NodeId, int] = {}
        # DFS from the source through the *undirected* tree, carrying the
        # running path minimum.
        stack: List[Tuple[NodeId, Optional[int]]] = [(source, None)]
        seen = {source}
        while stack:
            node, running = stack.pop()
            neighbors: List[Tuple[NodeId, int]] = [
                (child, self._weight[child]) for child in children[node]
            ]
            if node in self._parent:
                neighbors.append((self._parent[node], self._weight[node]))
            for neighbor, edge_weight in neighbors:
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                path_min = edge_weight if running is None else min(running, edge_weight)
                values[neighbor] = path_min
                stack.append((neighbor, path_min))
        return values

    def _root(self) -> NodeId:
        return self._nodes[0]

    def __repr__(self) -> str:
        kind = "flow-equivalent" if self.flow_equivalent else "repaired"
        return f"GomoryHuTree(nodes={len(self._nodes)}, {kind})"


def gomory_hu_tree(
    graph: NetworkGraph, signature: GraphSignature | None = None
) -> GomoryHuTree:
    """Build the cut tree of an undirected-equivalent graph (Gusfield's method).

    ``n - 1`` max-flow solves share one residual-graph build (capacities are
    snapshot/reset between pairs).  Every solved pair also seeds the main
    flow cache's ``("st", ...)`` and ``("st-cut", ...)`` keys — in both
    directions, since values (and complemented cut sides) transfer by
    symmetry — so later value-only queries are cache hits.

    Raises:
        GraphError: if the graph is not symmetric or has no nodes.
    """
    if signature is None:
        signature = graph_signature(graph)
    if not is_symmetric(graph):
        raise GraphError("Gomory-Hu trees require an undirected-equivalent graph")
    nodes = tuple(graph.nodes())
    if not nodes:
        raise GraphError("cannot build a cut tree of an empty graph")
    all_nodes = frozenset(nodes)
    parent: Dict[NodeId, NodeId] = {node: nodes[0] for node in nodes[1:]}
    weight: Dict[NodeId, int] = {}
    side: Dict[NodeId, FrozenSet[NodeId]] = {}
    solver = _build_solver(graph)
    solver.snapshot()
    order = list(nodes[1:])
    for index, node in enumerate(order):
        target = parent[node]
        solver.reset()
        value = solver.max_flow(node, target)
        cut = frozenset(solver.min_cut_reachable(node))
        weight[node] = value
        side[node] = cut
        seed_max_flow_with_cut(signature, node, target, value, cut)
        seed_max_flow_with_cut(signature, target, node, value, all_nodes - cut)
        for later in order[index + 1 :]:
            if later in cut and parent[later] == target:
                parent[later] = node
    return GomoryHuTree(
        signature=signature,
        nodes=nodes,
        parent=parent,
        weight=weight,
        side=side,
        flow_equivalent=True,
    )


def cached_gomory_hu(
    graph: NetworkGraph, signature: GraphSignature | None = None
) -> Optional[GomoryHuTree]:
    """The memoised flow-equivalent cut tree of ``graph``, or ``None``.

    Returns ``None`` (recording nothing) for directed / asymmetric graphs —
    callers then fall back to the frozen per-pair Dinic oracle.  On a miss
    for a symmetric graph the tree is built and cached.
    """
    if signature is None:
        signature = graph_signature(graph)
    tree = _GH_CACHE.lookup(("tree", signature))
    if tree is not None:
        return tree
    if not is_symmetric(graph):
        return None
    tree = gomory_hu_tree(graph, signature=signature)
    _GH_CACHE.store(("tree", signature), tree)
    _GH_CACHE.store(("global-min", signature), tree.min_weight() if len(tree.nodes()) > 1 else None)
    return tree


def tree_if_cached(signature: GraphSignature) -> Optional[GomoryHuTree]:
    """A cached *flow-equivalent* tree for this signature, without building one.

    Used by :func:`repro.graph.flow_cache.cached_st_mincut`: a single ``st``
    query never justifies ``n - 1`` solves, but an existing tree answers it
    for free.  Does not touch hit/miss counters (peek, not lookup).
    """
    tree = _GH_CACHE.peek(("tree", signature))
    return tree if isinstance(tree, GomoryHuTree) else None


def cached_global_mincut(
    graph: NetworkGraph, signature: GraphSignature | None = None
) -> Optional[int]:
    """The global undirected min-cut of a symmetric graph, through the cache.

    Served from (in order): the memoised value, a repaired tree (exact for
    global-min queries), or a fresh full build.  Returns ``None`` for
    asymmetric graphs.

    Raises:
        GraphError: if the graph has fewer than two nodes.
    """
    if signature is None:
        signature = graph_signature(graph)
    value = _GH_CACHE.lookup(("global-min", signature))
    if value is not None:
        return value
    partial = _GH_CACHE.peek(("tree-partial", signature))
    if isinstance(partial, GomoryHuTree):
        value = partial.min_weight()
        _GH_CACHE.store(("global-min", signature), value)
        return value
    tree = cached_gomory_hu(graph, signature=signature)
    if tree is None:
        return None
    if len(tree.nodes()) < 2:
        raise GraphError("global min-cut requires at least two nodes")
    return tree.min_weight()


def repair_tree_after_pair_removal(
    old_graph: NetworkGraph,
    tree: GomoryHuTree,
    new_graph: NetworkGraph,
    a: NodeId,
    b: NodeId,
) -> GomoryHuTree:
    """Exact decremental update of ``tree`` after removing the links of ``{a, b}``.

    ``old_graph`` must be the (symmetric) graph ``tree`` is exact for and
    ``new_graph`` must equal ``old_graph`` minus both directed links between
    ``a`` and ``b``.  Applies the adjusted / certified / resolved case split
    from the module docstring; at most one flow is solved for ``mincut(a, b)``
    (zero on flow-equivalent trees) plus one per *resolved* tree edge, all
    sharing a single residual build of ``new_graph``.

    The result is exact for every tree edge but flagged
    ``flow_equivalent=False`` (see class docstring).

    Raises:
        GraphError: if no link between ``a`` and ``b`` exists in ``old_graph``.
    """
    removed_capacity = old_graph.capacity(a, b)
    if tree.flow_equivalent:
        w_ab = tree.mincut(a, b)
        seed_st_mincut(tree.signature, a, b, w_ab)
        seed_st_mincut(tree.signature, b, a, w_ab)
    else:
        # Repaired trees cannot answer arbitrary pairs: one direct solve.
        from repro.graph.flow_cache import cached_st_mincut

        w_ab = cached_st_mincut(old_graph, a, b)
    new_signature = graph_signature(new_graph)
    all_nodes = frozenset(tree.nodes())
    weight: Dict[NodeId, int] = {}
    side: Dict[NodeId, FrozenSet[NodeId]] = {}
    solver: _DinicSolver | None = None
    _count_repair("pairs")
    for node, target, old_value in tree.tree_edges():
        cut = tree.cut_side(node)
        if (a in cut) != (b in cut):
            # The stored cut loses exactly the one crossing link; nothing
            # cheaper can appear (every other candidate was >= old_value).
            weight[node] = old_value - removed_capacity
            side[node] = cut
            _count_repair("adjusted")
        elif w_ab >= old_value + removed_capacity:
            # Every cut the removal touches also separated {a, b}, so it was
            # at least w_ab > old_value - removed_capacity away; the stored
            # cut (untouched) stays minimal.
            weight[node] = old_value
            side[node] = cut
            _count_repair("certified")
        else:
            if solver is None:
                solver = _build_solver(new_graph)
                solver.snapshot()
            solver.reset()
            value = solver.max_flow(node, target)
            fresh_cut = frozenset(solver.min_cut_reachable(node))
            weight[node] = value
            side[node] = fresh_cut
            seed_max_flow_with_cut(new_signature, node, target, value, fresh_cut)
            seed_max_flow_with_cut(
                new_signature, target, node, value, all_nodes - fresh_cut
            )
            _count_repair("resolved")
    return GomoryHuTree(
        signature=new_signature,
        nodes=tree.nodes(),
        parent={node: target for node, target, _ in tree.tree_edges()},
        weight=weight,
        side=side,
        flow_equivalent=False,
    )


def derive_trees_after_pair_removals(
    old_graph: NetworkGraph,
    pairs: Iterable[FrozenSet[NodeId]],
    new_graph: NetworkGraph,
) -> Optional[GomoryHuTree]:
    """Seed the cache for ``new_graph`` by chain-repairing ``old_graph``'s tree.

    The dispute-path hook: ``new_graph`` must be ``old_graph`` minus the
    links of every pair in ``pairs`` (pairs without a present link are
    skipped).  If no tree for ``old_graph`` is cached, or the graphs are not
    symmetric, this is a cheap no-op returning ``None`` — nothing is built
    eagerly; repair only ever *reuses* existing solved state.

    On success the repaired tree and its global-min value are cached under
    ``new_graph``'s signature (and every intermediate signature), and the
    final tree is returned.
    """
    old_signature = graph_signature(old_graph)
    tree = _GH_CACHE.peek(("tree", old_signature))
    if tree is None:
        tree = _GH_CACHE.peek(("tree-partial", old_signature))
    if not isinstance(tree, GomoryHuTree):
        return None
    current = old_graph
    for pair in sorted(pairs, key=lambda p: tuple(sorted(p))):
        a, b = sorted(pair)
        if not current.has_node(a) or not current.has_node(b):
            continue
        if not current.has_edge(a, b) and not current.has_edge(b, a):
            continue
        next_graph = current.remove_links_between([pair])
        tree = repair_tree_after_pair_removal(current, tree, next_graph, a, b)
        _GH_CACHE.store(("tree-partial", tree.signature), tree)
        if len(tree.nodes()) > 1:
            _GH_CACHE.store(("global-min", tree.signature), tree.min_weight())
        current = next_graph
    if graph_signature(current) != graph_signature(new_graph):
        # The caller's graphs did not line up (e.g. a pair touched a node
        # absent from old_graph); the seeded intermediates are still exact
        # for their own signatures, but there is nothing valid to return.
        return None
    return tree if isinstance(tree, GomoryHuTree) and not tree.flow_equivalent else None
