"""Vertex connectivity and vertex-disjoint paths.

Two requirements of the paper are checked / exercised here:

* a correct BB algorithm exists only if the network connectivity is at least
  ``2f + 1`` (Fischer–Lynch–Merritt); :func:`vertex_connectivity` and
  :func:`meets_connectivity_requirement` verify that precondition;
* reliable end-to-end communication between fault-free nodes is emulated by
  sending the same data along ``2f + 1`` vertex-disjoint paths and taking a
  majority at the receiver (Appendix D); :func:`vertex_disjoint_paths`
  extracts those paths.

Vertex connectivity is computed with the standard node-splitting reduction to
max-flow: each vertex ``v`` becomes ``v_in -> v_out`` with unit capacity, so a
max-flow between ``u_out`` and ``w_in`` counts internally-vertex-disjoint
paths.  Paths themselves are recovered by decomposing the integral max-flow,
which (unlike greedy shortest-path peeling) always recovers the promised
number of disjoint paths.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import GraphError
from repro.graph.maxflow import _DinicSolver
from repro.graph.network_graph import NetworkGraph
from repro.types import NodeId

_SplitName = Tuple[str, NodeId]


def _node_split_solver(
    graph: NetworkGraph,
) -> Tuple[_DinicSolver, Dict[NodeId, Tuple[_SplitName, _SplitName]]]:
    """Build the node-split flow network.

    Every node ``v`` is split into ``("in", v)`` and ``("out", v)`` joined by an
    edge of capacity 1; every directed edge ``(u, v)`` becomes
    ``("out", u) -> ("in", v)`` with capacity 1 (a simple graph has at most one
    such link, and a vertex-disjoint path uses it at most once).
    """
    solver = _DinicSolver()
    names: Dict[NodeId, Tuple[_SplitName, _SplitName]] = {}
    for node in graph.nodes():
        in_name: _SplitName = ("in", node)
        out_name: _SplitName = ("out", node)
        names[node] = (in_name, out_name)
        solver.add_edge(in_name, out_name, 1)
    for tail, head, _capacity in graph.edges():
        solver.add_edge(names[tail][1], names[head][0], 1)
    return solver, names


def local_connectivity(graph: NetworkGraph, source: NodeId, target: NodeId) -> int:
    """Maximum number of internally-vertex-disjoint directed paths from source to target.

    A direct edge ``source -> target`` contributes one path (it has no internal
    vertices, so removing other vertices can never block it); it is counted
    separately and excluded from the flow computation.
    """
    if not graph.has_node(source) or not graph.has_node(target):
        raise GraphError("both endpoints must be nodes of the graph")
    if source == target:
        raise GraphError("local connectivity requires two distinct nodes")
    direct = 1 if graph.has_edge(source, target) else 0
    working = graph.remove_edges([(source, target)]) if direct else graph
    solver, names = _node_split_solver(working)
    flow = solver.max_flow(names[source][1], names[target][0])
    return flow + direct


def vertex_connectivity(graph: NetworkGraph) -> int:
    """Directed vertex connectivity: ``min_{u != v} local_connectivity(u, v)``.

    For graphs with fewer than two nodes the connectivity is defined as the
    node count (0 or 1) for convenience.
    """
    nodes = graph.nodes()
    if len(nodes) < 2:
        return len(nodes)
    return min(
        local_connectivity(graph, u, v)
        for u in nodes
        for v in nodes
        if u != v
    )


def _strongly_connected(graph: NetworkGraph) -> bool:
    """Whether every node reaches every other (two BFS passes, O(V + E))."""
    nodes = graph.nodes()
    if len(nodes) < 2:
        return True
    for neighbors in (graph.successors, graph.predecessors):
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            node = frontier.pop()
            for neighbor in neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        if len(seen) != len(nodes):
            return False
    return True


def has_vertex_connectivity_at_least(graph: NetworkGraph, k: int) -> bool:
    """Whether the directed vertex connectivity is at least ``k``.

    :func:`vertex_connectivity` solves all ``n (n - 1)`` ordered pairs exactly
    — prohibitive on datacenter-scale fabrics, where feasibility filtering
    only ever asks the *threshold* question ``kappa >= 2 f + 1``.  This
    decides it with at most ``2 k n`` flows, each capped at ``k`` augmenting
    paths:

    * ``k <= 0`` is vacuous and ``k == 1`` is strong connectivity (two BFS);
    * any node of in- or out-degree below ``k`` bounds the connectivity below
      ``k`` (each disjoint path consumes a distinct incident edge);
    * otherwise fix the first ``k`` nodes as anchors and require
      ``local_connectivity >= k`` between every anchor and every other node,
      in both directions.  Sound: local connectivity never undershoots
      ``kappa``.  Complete: a vertex cut of size ``< k`` misses at least one
      anchor ``a``; disconnection leaves some ``x, y`` with no ``x -> y``
      path, and paths ``x -> a`` and ``a -> y`` cannot both exist — so one
      checked direction has local connectivity ``< k``.

    The flows run on one shared node-split build with capacities reset
    between pairs, and each stops as soon as ``k`` paths are found.
    """
    nodes = graph.nodes()
    if len(nodes) < 2:
        return len(nodes) >= k
    if k <= 0:
        return True
    for node in nodes:
        if len(graph.successors(node)) < k or len(graph.predecessors(node)) < k:
            return False
    if k == 1:
        return _strongly_connected(graph)
    solver, names = _node_split_solver(graph)
    solver.snapshot()
    anchors = nodes[:k]
    anchor_set = set(anchors)
    for anchor in anchors:
        for other in nodes:
            if other == anchor:
                continue
            if other in anchor_set and other < anchor:
                continue  # both directions already checked from the smaller anchor
            for source, target in ((anchor, other), (other, anchor)):
                solver.reset()
                flow = solver.max_flow(names[source][1], names[target][0], limit=k)
                if flow < k:
                    return False
    return True


def meets_connectivity_requirement(graph: NetworkGraph, max_faults: int) -> bool:
    """Whether the network connectivity is at least ``2 * max_faults + 1``.

    Decided with the capped threshold check
    (:func:`has_vertex_connectivity_at_least`) rather than the exact
    :func:`vertex_connectivity` — identical answers, but usable as a
    feasibility filter on 1000-node fabrics.
    """
    if max_faults < 0:
        raise GraphError(f"max_faults must be non-negative, got {max_faults}")
    return has_vertex_connectivity_at_least(graph, 2 * max_faults + 1)


def vertex_disjoint_paths(
    graph: NetworkGraph, source: NodeId, target: NodeId, count: int
) -> List[List[NodeId]]:
    """Extract ``count`` internally-vertex-disjoint directed paths from source to target.

    The direct edge (if any) is returned as the two-node path
    ``[source, target]``; the remaining paths are obtained by decomposing an
    integral max-flow in the node-split graph, so exactly the promised number
    of disjoint paths is always produced when it exists.

    Raises:
        GraphError: if fewer than ``count`` disjoint paths exist.
    """
    if count < 1:
        raise GraphError(f"count must be >= 1, got {count}")
    if not graph.has_node(source) or not graph.has_node(target):
        raise GraphError("both endpoints must be nodes of the graph")
    if source == target:
        raise GraphError("paths require two distinct endpoints")
    paths: List[List[NodeId]] = []
    working = graph
    if graph.has_edge(source, target):
        paths.append([source, target])
        working = graph.remove_edges([(source, target)])
    needed_from_flow = count - len(paths)
    if needed_from_flow <= 0:
        return paths[:count]
    solver, names = _node_split_solver(working)
    flow_value = solver.max_flow(names[source][1], names[target][0])
    if flow_value + len(paths) < count:
        raise GraphError(
            f"only {flow_value + len(paths)} vertex-disjoint paths exist from "
            f"{source} to {target}, need {count}"
        )
    flow_successors = _flow_adjacency(solver, names, working)
    for _ in range(needed_from_flow):
        paths.append(_extract_flow_path(flow_successors, source, target))
    return paths


def _flow_adjacency(
    solver: _DinicSolver,
    names: Dict[NodeId, Tuple[_SplitName, _SplitName]],
    graph: NetworkGraph,
) -> Dict[NodeId, List[NodeId]]:
    """Map each original node to the successors that carry one unit of flow out of it."""
    out_name_to_node = {names[node][1]: node for node in graph.nodes()}
    in_name_to_node = {names[node][0]: node for node in graph.nodes()}
    adjacency: Dict[NodeId, List[NodeId]] = {node: [] for node in graph.nodes()}
    # Forward edges were added in pairs (forward at even indices); an edge
    # carries flow iff its residual capacity dropped below its original value,
    # equivalently iff the reverse edge now has positive capacity.
    for index in range(0, len(solver._to), 2):
        head_name = solver._to[index]
        tail_name = solver._to[index + 1]
        if tail_name in out_name_to_node and head_name in in_name_to_node:
            flow_units = solver._capacity[index + 1]
            if flow_units > 0:
                tail = out_name_to_node[tail_name]
                head = in_name_to_node[head_name]
                adjacency[tail].extend([head] * flow_units)
    return adjacency


def _extract_flow_path(
    flow_successors: Dict[NodeId, List[NodeId]], source: NodeId, target: NodeId
) -> List[NodeId]:
    """Pop one source-to-target path out of the flow adjacency structure."""
    path = [source]
    current = source
    while current != target:
        candidates = flow_successors.get(current)
        if not candidates:
            raise GraphError("flow decomposition failed: dangling flow path")
        current = candidates.pop()
        path.append(current)
        if len(path) > 1 + len(flow_successors):
            raise GraphError("flow decomposition failed: cycle detected in flow")
    return path
