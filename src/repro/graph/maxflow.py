"""Maximum flow on capacitated directed graphs (Dinic's algorithm).

The paper's throughput analysis is built almost entirely on min-cut values:
``MINCUT(G_k, 1, j)`` bounds Phase 1, and the pairwise undirected min-cuts
``U_k`` bound Phase 2.  By the max-flow/min-cut theorem those quantities are
computed here as maximum flows.  Dinic's algorithm is used because it is
simple, exact for integer capacities, and more than fast enough for the
network sizes the simulator targets (tens of nodes).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set, Tuple

from repro.exceptions import GraphError
from repro.graph.network_graph import NetworkGraph
from repro.types import NodeId


class _DinicSolver:
    """A single-use Dinic max-flow solver on an adjacency-list residual graph."""

    def __init__(self) -> None:
        self._adjacency: Dict[NodeId, List[int]] = {}
        # Edge arrays: to[i], capacity[i]; reverse edge of i is i ^ 1.
        self._to: List[NodeId] = []
        self._capacity: List[int] = []
        self._initial_capacity: List[int] | None = None

    def snapshot(self) -> None:
        """Record the current capacities so :meth:`reset` can restore them.

        Lets one residual-graph build (nodes, edge arrays, adjacency lists)
        be reused across several max-flow queries on the same graph.
        """
        self._initial_capacity = list(self._capacity)

    def reset(self) -> None:
        """Restore the capacities recorded by :meth:`snapshot`."""
        if self._initial_capacity is None:
            raise GraphError("snapshot() must be called before reset()")
        self._capacity = list(self._initial_capacity)

    def add_node(self, node: NodeId) -> None:
        self._adjacency.setdefault(node, [])

    def add_edge(self, tail: NodeId, head: NodeId, capacity: int) -> None:
        self.add_node(tail)
        self.add_node(head)
        self._adjacency[tail].append(len(self._to))
        self._to.append(head)
        self._capacity.append(capacity)
        self._adjacency[head].append(len(self._to))
        self._to.append(tail)
        self._capacity.append(0)

    def _bfs_levels(self, source: NodeId, sink: NodeId) -> Dict[NodeId, int] | None:
        levels = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge_index in self._adjacency[node]:
                target = self._to[edge_index]
                if self._capacity[edge_index] > 0 and target not in levels:
                    levels[target] = levels[node] + 1
                    queue.append(target)
        return levels if sink in levels else None

    def _dfs_augment(
        self,
        node: NodeId,
        sink: NodeId,
        pushed: int,
        levels: Dict[NodeId, int],
        iterators: Dict[NodeId, int],
    ) -> int:
        if node == sink:
            return pushed
        adjacency = self._adjacency[node]
        while iterators[node] < len(adjacency):
            edge_index = adjacency[iterators[node]]
            target = self._to[edge_index]
            if self._capacity[edge_index] > 0 and levels.get(target, -1) == levels[node] + 1:
                flow = self._dfs_augment(
                    target, sink, min(pushed, self._capacity[edge_index]), levels, iterators
                )
                if flow > 0:
                    self._capacity[edge_index] -= flow
                    self._capacity[edge_index ^ 1] += flow
                    return flow
            iterators[node] += 1
        return 0

    def max_flow(self, source: NodeId, sink: NodeId, limit: int | None = None) -> int:
        """Maximum flow value, optionally stopping once ``limit`` is reached.

        With a ``limit``, augmentation stops as soon as the accumulated flow
        reaches it and ``limit`` is returned — the exact value is then only
        known to be ``>= limit``.  Threshold queries (is the connectivity at
        least ``k``?) use this to avoid saturating large cuts.
        """
        if source not in self._adjacency or sink not in self._adjacency:
            raise GraphError("source or sink not present in the flow network")
        if source == sink:
            raise GraphError("source and sink must differ")
        total = 0
        infinity = sum(self._capacity) + 1
        while True:
            levels = self._bfs_levels(source, sink)
            if levels is None:
                return total
            iterators = {node: 0 for node in self._adjacency}
            while True:
                if limit is not None and total >= limit:
                    return total
                pushed = self._dfs_augment(source, sink, infinity, levels, iterators)
                if pushed == 0:
                    break
                total += pushed

    def min_cut_reachable(self, source: NodeId) -> Set[NodeId]:
        """After running max_flow: the source side of a minimum cut."""
        seen = {source}
        frontier = [source]
        while frontier:
            node = frontier.pop()
            for edge_index in self._adjacency[node]:
                target = self._to[edge_index]
                if self._capacity[edge_index] > 0 and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen


def _build_solver(graph: NetworkGraph) -> _DinicSolver:
    solver = _DinicSolver()
    for node in graph.nodes():
        solver.add_node(node)
    for tail, head, capacity in graph.edges():
        solver.add_edge(tail, head, capacity)
    return solver


def max_flow_value(graph: NetworkGraph, source: NodeId, sink: NodeId) -> int:
    """Maximum flow value from ``source`` to ``sink`` in the directed graph.

    Raises:
        GraphError: if either endpoint is missing or they coincide.
    """
    if not graph.has_node(source) or not graph.has_node(sink):
        raise GraphError("source or sink not present in the graph")
    return _build_solver(graph).max_flow(source, sink)


def all_max_flow_values(
    graph: NetworkGraph, source: NodeId, sinks: Iterable[NodeId]
) -> Dict[NodeId, int]:
    """Max-flow value from ``source`` to each sink, sharing one solver build.

    The residual graph (adjacency lists and edge arrays) is constructed once
    and only the capacity array is reset between queries, which is the bulk
    of per-query setup cost for the broadcast min-cut sweeps.

    Raises:
        GraphError: if the source or any sink is missing, or a sink equals
            the source.
    """
    if not graph.has_node(source):
        raise GraphError("source or sink not present in the graph")
    sink_list = list(sinks)
    for sink in sink_list:
        if not graph.has_node(sink):
            raise GraphError("source or sink not present in the graph")
    values: Dict[NodeId, int] = {}
    if not sink_list:
        return values
    solver = _build_solver(graph)
    solver.snapshot()
    for sink in sink_list:
        solver.reset()
        values[sink] = solver.max_flow(source, sink)
    return values


def max_flow_with_cut(
    graph: NetworkGraph, source: NodeId, sink: NodeId
) -> Tuple[int, Set[NodeId]]:
    """Maximum flow value together with the source side of a minimum cut."""
    if not graph.has_node(source) or not graph.has_node(sink):
        raise GraphError("source or sink not present in the graph")
    solver = _build_solver(graph)
    value = solver.max_flow(source, sink)
    return value, solver.min_cut_reachable(source)
