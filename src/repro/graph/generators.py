"""Network topology generators: the paper's example graphs and synthetic families.

The paper's figures are drawings that the text describes only through the
quantities they must exhibit; the reconstructions below are chosen to satisfy
every stated fact:

* :func:`figure1a` — a 4-node directed graph with
  ``MINCUT(1,2) = MINCUT(1,4) = 2``, ``MINCUT(1,3) = 3`` and hence
  ``gamma = 2``, with no link between nodes 2 and 4 (Section 3 notes those two
  nodes can never be found in dispute because no link joins them).
* :func:`figure1b` — the same network after nodes 2 and 3 have been found in
  dispute (the links between them are removed).  With ``n = 4, f = 1`` the set
  ``Omega_k`` then contains the subgraphs on ``{1, 2, 4}`` and ``{1, 3, 4}``
  and ``U_k = 2``, exactly as the paper states.
* :func:`figure2a` — a 4-node directed graph in which link ``(1, 2)`` has
  capacity 2 and two unit-capacity spanning trees can be packed, both using
  link ``(1, 2)`` (Appendix A's example); it contains the directed edges
  ``(2, 3)``, ``(1, 4)`` and ``(4, 3)`` referenced by Appendix C's example.

Synthetic families (complete, ring-with-chords, random regular-ish, bottleneck
and layered topologies) are used by the workloads and benchmark sweeps.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.exceptions import GraphError
from repro.graph.connectivity import has_vertex_connectivity_at_least
from repro.graph.network_graph import NetworkGraph
from repro.types import Edge, NodeId


def figure1a() -> NetworkGraph:
    """Reconstruction of the paper's Figure 1(a) example graph ``G``."""
    return NetworkGraph.from_edges(
        {
            (1, 2): 2,
            (1, 3): 2,
            (1, 4): 1,
            (4, 1): 1,
            (2, 3): 1,
            (3, 4): 1,
        }
    )


def figure1b() -> NetworkGraph:
    """Reconstruction of Figure 1(b): Figure 1(a) after a 2-3 dispute removed their links."""
    return figure1a().remove_links_between([frozenset((2, 3))])


def figure2a() -> NetworkGraph:
    """Reconstruction of Figure 2(a): the directed graph used in the spanning-tree example."""
    return NetworkGraph.from_edges(
        {
            (1, 2): 2,
            (1, 4): 1,
            (2, 3): 1,
            (2, 4): 1,
            (4, 3): 1,
        }
    )


def figure2_tree_packing() -> List[Dict[NodeId, NodeId]]:
    """The two unit-capacity spanning trees of Figure 2(c), as child -> parent maps.

    Both trees use link ``(1, 2)``, for a combined usage of 2 units, matching
    the capacity of that link — the property Appendix A points out.
    """
    tree_solid = {2: 1, 3: 2, 4: 1}
    tree_dotted = {2: 1, 4: 2, 3: 4}
    return [tree_solid, tree_dotted]


def complete_graph(node_count: int, capacity: int = 1) -> NetworkGraph:
    """A complete directed graph on ``node_count`` nodes with uniform link capacity."""
    if node_count < 2:
        raise GraphError(f"complete graph needs at least 2 nodes, got {node_count}")
    graph = NetworkGraph()
    for tail in range(1, node_count + 1):
        for head in range(1, node_count + 1):
            if tail != head:
                graph.add_edge(tail, head, capacity)
    return graph


def ring_with_chords(node_count: int, chord_span: int = 2, capacity: int = 1) -> NetworkGraph:
    """A bidirectional ring plus chords to nodes ``chord_span`` positions away.

    The chords raise the vertex connectivity above 2, which is what makes the
    topology usable for ``f >= 1`` (connectivity ``>= 2f + 1``).
    """
    if node_count < 3:
        raise GraphError(f"ring needs at least 3 nodes, got {node_count}")
    graph = NetworkGraph()
    edges = set()
    for index in range(node_count):
        node = index + 1
        neighbors = [((index + 1) % node_count) + 1]
        if chord_span % node_count not in (0, 1, node_count - 1):
            neighbors.append(((index + chord_span) % node_count) + 1)
        for neighbor in neighbors:
            for tail, head in ((node, neighbor), (neighbor, node)):
                if (tail, head) not in edges and tail != head:
                    edges.add((tail, head))
                    graph.add_edge(tail, head, capacity)
    return graph


def heterogeneous_bottleneck(
    node_count: int, fast_capacity: int, slow_capacity: int
) -> NetworkGraph:
    """A complete bidirectional graph where links touching the last node are slow.

    This is the kind of topology the paper's introduction motivates: when link
    capacities differ widely, capacity-oblivious BB algorithms that treat all
    links alike are throttled by the slow links, while a network-aware
    algorithm routes bulk data over the fast ones.
    """
    if node_count < 3:
        raise GraphError(f"topology needs at least 3 nodes, got {node_count}")
    if fast_capacity < 1 or slow_capacity < 1:
        raise GraphError("capacities must be positive")
    graph = NetworkGraph()
    slow_node = node_count
    for tail in range(1, node_count + 1):
        for head in range(1, node_count + 1):
            if tail == head:
                continue
            capacity = slow_capacity if slow_node in (tail, head) else fast_capacity
            graph.add_edge(tail, head, capacity)
    return graph


def layered_pipeline(layer_count: int, layer_size: int, capacity: int = 1) -> NetworkGraph:
    """A layered topology where the source reaches distant layers only via relays.

    Node 1 is the source; layer ``i`` (``i >= 1``) contains ``layer_size``
    nodes, each connected bidirectionally to every node of the adjacent
    layers.  The diameter grows with ``layer_count``, which is what makes
    propagation-delay pipelining (Figure 3) interesting.
    """
    if layer_count < 1 or layer_size < 1:
        raise GraphError("layer_count and layer_size must be >= 1")
    graph = NetworkGraph()
    graph.add_node(1)
    previous_layer: List[NodeId] = [1]
    next_id = 2
    for _ in range(layer_count):
        current_layer = list(range(next_id, next_id + layer_size))
        next_id += layer_size
        for upstream in previous_layer:
            for downstream in current_layer:
                graph.add_edge(upstream, downstream, capacity)
                graph.add_edge(downstream, upstream, capacity)
        # Fully connect nodes within a layer so the layer itself is robust.
        for a in current_layer:
            for b in current_layer:
                if a != b:
                    graph.add_edge(a, b, capacity)
        previous_layer = current_layer
    return graph


def random_connected_network(
    node_count: int,
    min_connectivity: int,
    rng: random.Random,
    max_capacity: int = 4,
    extra_edge_probability: float = 0.3,
    symmetric: bool = False,
) -> NetworkGraph:
    """A random bidirectional network with vertex connectivity at least ``min_connectivity``.

    Construction: start from a Harary-style circulant skeleton that guarantees
    the requested connectivity, add random extra links, then assign each link
    an independent random capacity in ``[1, max_capacity]`` (both directions of
    a link may get different capacities, making the network genuinely
    direction-asymmetric).  With ``symmetric=True`` one capacity is drawn per
    undirected link and used in both directions, producing an
    undirected-equivalent graph (the regime the Gomory-Hu layer accelerates).

    Raises:
        GraphError: if the requested connectivity cannot be met with
            ``node_count`` nodes.
    """
    if min_connectivity < 1:
        raise GraphError("min_connectivity must be >= 1")
    if node_count <= min_connectivity:
        raise GraphError(
            f"connectivity {min_connectivity} impossible with only {node_count} nodes"
        )
    undirected_pairs = set()
    # Circulant skeleton: connect each node to the next ceil(min_connectivity / 2)
    # nodes around a ring, which yields vertex connectivity >= min_connectivity
    # (Harary graph construction).
    span = -(-min_connectivity // 2)
    for index in range(node_count):
        for offset in range(1, span + 1):
            a = index + 1
            b = ((index + offset) % node_count) + 1
            if a != b:
                undirected_pairs.add(frozenset((a, b)))
    if min_connectivity % 2 == 1 and node_count % 2 == 0:
        # Odd connectivity on an even cycle: add diameters, as in Harary graphs.
        half = node_count // 2
        for index in range(half):
            undirected_pairs.add(frozenset((index + 1, index + 1 + half)))
    elif min_connectivity % 2 == 1 and node_count % 2 == 1:
        # Odd node count: Harary's construction adds near-diameter chords.
        half = node_count // 2
        for index in range(half + 1):
            undirected_pairs.add(frozenset((index + 1, ((index + half) % node_count) + 1)))
    for a in range(1, node_count + 1):
        for b in range(a + 1, node_count + 1):
            if frozenset((a, b)) not in undirected_pairs and rng.random() < extra_edge_probability:
                undirected_pairs.add(frozenset((a, b)))
    graph = NetworkGraph()
    for node in range(1, node_count + 1):
        graph.add_node(node)
    for pair in sorted(undirected_pairs, key=lambda p: tuple(sorted(p))):
        a, b = sorted(pair)
        forward = rng.randint(1, max_capacity)
        backward = forward if symmetric else rng.randint(1, max_capacity)
        graph.add_edge(a, b, forward)
        graph.add_edge(b, a, backward)
    if not has_vertex_connectivity_at_least(graph, min_connectivity):  # pragma: no cover - construction guard
        raise GraphError("random network construction failed to reach the requested connectivity")
    return graph


def uniform_random_capacities(
    edges: Sequence[Edge], rng: random.Random, max_capacity: int = 4
) -> NetworkGraph:
    """Build a graph from the given directed edges with independent random capacities."""
    graph = NetworkGraph()
    for tail, head in edges:
        graph.add_edge(tail, head, rng.randint(1, max_capacity))
    return graph


# ---------------------------------------------------------------------------
# Datacenter-scale families (PR 8).  All four generators are deterministic
# (no RNG), number nodes from 1, and emit symmetric graphs — every link is a
# pair of equal-capacity anti-parallel edges — so the whole analysis path
# runs on Gomory-Hu trees instead of per-pair flows.


def _add_link(graph: NetworkGraph, a: NodeId, b: NodeId, capacity: int) -> None:
    """Add the symmetric link ``{a, b}`` unless it already exists."""
    if a != b and not graph.has_edge(a, b):
        graph.add_edge(a, b, capacity)
        graph.add_edge(b, a, capacity)


def fat_tree(k: int, capacity: int = 4) -> NetworkGraph:
    """A ``k``-ary fat-tree fabric: ``(k/2)^2`` cores + ``k`` pods of ``k`` switches.

    The classic 3-tier Clos topology of datacenter networks.  Core switches
    ``(g, m)`` for ``g, m < k/2`` are numbered first; each pod then holds
    ``k/2`` aggregation and ``k/2`` edge switches.  Core ``(g, m)`` connects
    to aggregation switch ``g`` of every pod; within a pod, aggregation and
    edge switches form a complete bipartite graph.  Total nodes:
    ``5 k^2 / 4`` (``k = 8`` gives 80, ``k = 16`` gives 320); vertex
    connectivity ``k / 2``.

    Raises:
        GraphError: if ``k`` is odd or below 4, or the capacity is not positive.
    """
    if k < 4 or k % 2:
        raise GraphError(f"fat-tree arity must be even and >= 4, got {k}")
    if capacity < 1:
        raise GraphError("capacity must be positive")
    half = k // 2
    graph = NetworkGraph()
    core = {(g, m): g * half + m + 1 for g in range(half) for m in range(half)}
    next_id = half * half + 1
    for _pod in range(k):
        aggregation = list(range(next_id, next_id + half))
        edge = list(range(next_id + half, next_id + k))
        next_id += k
        for g in range(half):
            for m in range(half):
                _add_link(graph, core[(g, m)], aggregation[g], capacity)
        for agg in aggregation:
            for leaf in edge:
                _add_link(graph, agg, leaf, capacity)
    return graph


def torus_2d(rows: int, cols: int, capacity: int = 2) -> NetworkGraph:
    """A ``rows x cols`` wraparound 2D torus: every node links to 4 neighbours.

    The standard HPC / TPU-pod interconnect.  Node at ``(r, c)`` has
    identifier ``r * cols + c + 1``.  Vertex connectivity 4 (each node has
    exactly four distinct neighbours when both dimensions are >= 3).

    Raises:
        GraphError: if either dimension is below 3 or the capacity is not
            positive.
    """
    if rows < 3 or cols < 3:
        raise GraphError(f"torus dimensions must be >= 3, got {rows}x{cols}")
    if capacity < 1:
        raise GraphError("capacity must be positive")
    graph = NetworkGraph()
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c + 1
            right = r * cols + ((c + 1) % cols) + 1
            down = ((r + 1) % rows) * cols + c + 1
            _add_link(graph, node, right, capacity)
            _add_link(graph, node, down, capacity)
    return graph


def ring_of_rings(
    ring_count: int,
    ring_size: int,
    local_capacity: int = 4,
    express_capacity: int = 8,
    uplinks: int = 2,
) -> NetworkGraph:
    """An optical ring-of-rings fabric (InfiniteHBD-style reconfigurable rings).

    ``ring_count`` local rings of ``ring_size`` nodes each; node ``i`` of
    ring ``r`` has identifier ``r * ring_size + i + 1``.  Within a ring,
    adjacent nodes link at ``local_capacity`` (plus distance-2 chords when
    the ring has at least 5 nodes, so a local ring alone is 4-connected).
    ``uplinks`` evenly spaced positions of each ring carry express links of
    ``express_capacity`` to the same positions of both neighbouring rings.
    Vertex connectivity is ``min(4, uplinks)`` for ``ring_size >= 5`` —
    choose ``uplinks >= 3`` for ``f = 1`` feasibility.

    Raises:
        GraphError: if fewer than 3 rings, rings smaller than 3 nodes,
            ``uplinks`` outside ``[1, ring_size]``, or a non-positive capacity.
    """
    if ring_count < 3:
        raise GraphError(f"need at least 3 rings, got {ring_count}")
    if ring_size < 3:
        raise GraphError(f"rings need at least 3 nodes, got {ring_size}")
    if not 1 <= uplinks <= ring_size:
        raise GraphError(f"uplinks must be in [1, {ring_size}], got {uplinks}")
    if local_capacity < 1 or express_capacity < 1:
        raise GraphError("capacities must be positive")
    graph = NetworkGraph()

    def node(ring: int, position: int) -> NodeId:
        return (ring % ring_count) * ring_size + (position % ring_size) + 1

    for ring in range(ring_count):
        for position in range(ring_size):
            _add_link(graph, node(ring, position), node(ring, position + 1), local_capacity)
            if ring_size >= 5:
                _add_link(graph, node(ring, position), node(ring, position + 2), local_capacity)
    uplink_positions = [(ring_size * j) // uplinks for j in range(uplinks)]
    for ring in range(ring_count):
        for position in uplink_positions:
            _add_link(graph, node(ring, position), node(ring + 1, position), express_capacity)
    return graph


def octopus_pods(
    pod_count: int,
    pod_size: int,
    spine_width: int = 3,
    intra_capacity: int = 2,
    spine_capacity: int = 8,
) -> NetworkGraph:
    """A sparse Octopus-style pod fabric: meshed pods joined by thin spines.

    ``pod_count`` pods of ``pod_size`` nodes each; node ``i`` of pod ``p``
    has identifier ``p * pod_size + i + 1``.  Each pod is a full mesh at
    ``intra_capacity``; the first ``spine_width`` nodes of every pod carry
    index-matched spine links of ``spine_capacity`` to the corresponding
    nodes of pods ``p + 1`` and ``p + 2`` (mod ``pod_count``), so the
    inter-pod graph stays connected under single-pod loss.  Vertex
    connectivity ``min(spine_width, pod_size - 1)``.

    Raises:
        GraphError: if fewer than 3 pods, pods smaller than 2 nodes,
            ``spine_width`` outside ``[1, pod_size]``, or a non-positive
            capacity.
    """
    if pod_count < 3:
        raise GraphError(f"need at least 3 pods, got {pod_count}")
    if pod_size < 2:
        raise GraphError(f"pods need at least 2 nodes, got {pod_size}")
    if not 1 <= spine_width <= pod_size:
        raise GraphError(f"spine_width must be in [1, {pod_size}], got {spine_width}")
    if intra_capacity < 1 or spine_capacity < 1:
        raise GraphError("capacities must be positive")
    graph = NetworkGraph()

    def node(pod: int, index: int) -> NodeId:
        return (pod % pod_count) * pod_size + index + 1

    for pod in range(pod_count):
        for a in range(pod_size):
            for b in range(a + 1, pod_size):
                _add_link(graph, node(pod, a), node(pod, b), intra_capacity)
        for index in range(spine_width):
            _add_link(graph, node(pod, index), node(pod + 1, index), spine_capacity)
            _add_link(graph, node(pod, index), node(pod + 2, index), spine_capacity)
    return graph
