"""Network topology generators: the paper's example graphs and synthetic families.

The paper's figures are drawings that the text describes only through the
quantities they must exhibit; the reconstructions below are chosen to satisfy
every stated fact:

* :func:`figure1a` — a 4-node directed graph with
  ``MINCUT(1,2) = MINCUT(1,4) = 2``, ``MINCUT(1,3) = 3`` and hence
  ``gamma = 2``, with no link between nodes 2 and 4 (Section 3 notes those two
  nodes can never be found in dispute because no link joins them).
* :func:`figure1b` — the same network after nodes 2 and 3 have been found in
  dispute (the links between them are removed).  With ``n = 4, f = 1`` the set
  ``Omega_k`` then contains the subgraphs on ``{1, 2, 4}`` and ``{1, 3, 4}``
  and ``U_k = 2``, exactly as the paper states.
* :func:`figure2a` — a 4-node directed graph in which link ``(1, 2)`` has
  capacity 2 and two unit-capacity spanning trees can be packed, both using
  link ``(1, 2)`` (Appendix A's example); it contains the directed edges
  ``(2, 3)``, ``(1, 4)`` and ``(4, 3)`` referenced by Appendix C's example.

Synthetic families (complete, ring-with-chords, random regular-ish, bottleneck
and layered topologies) are used by the workloads and benchmark sweeps.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.exceptions import GraphError
from repro.graph.connectivity import vertex_connectivity
from repro.graph.network_graph import NetworkGraph
from repro.types import Edge, NodeId


def figure1a() -> NetworkGraph:
    """Reconstruction of the paper's Figure 1(a) example graph ``G``."""
    return NetworkGraph.from_edges(
        {
            (1, 2): 2,
            (1, 3): 2,
            (1, 4): 1,
            (4, 1): 1,
            (2, 3): 1,
            (3, 4): 1,
        }
    )


def figure1b() -> NetworkGraph:
    """Reconstruction of Figure 1(b): Figure 1(a) after a 2-3 dispute removed their links."""
    return figure1a().remove_links_between([frozenset((2, 3))])


def figure2a() -> NetworkGraph:
    """Reconstruction of Figure 2(a): the directed graph used in the spanning-tree example."""
    return NetworkGraph.from_edges(
        {
            (1, 2): 2,
            (1, 4): 1,
            (2, 3): 1,
            (2, 4): 1,
            (4, 3): 1,
        }
    )


def figure2_tree_packing() -> List[Dict[NodeId, NodeId]]:
    """The two unit-capacity spanning trees of Figure 2(c), as child -> parent maps.

    Both trees use link ``(1, 2)``, for a combined usage of 2 units, matching
    the capacity of that link — the property Appendix A points out.
    """
    tree_solid = {2: 1, 3: 2, 4: 1}
    tree_dotted = {2: 1, 4: 2, 3: 4}
    return [tree_solid, tree_dotted]


def complete_graph(node_count: int, capacity: int = 1) -> NetworkGraph:
    """A complete directed graph on ``node_count`` nodes with uniform link capacity."""
    if node_count < 2:
        raise GraphError(f"complete graph needs at least 2 nodes, got {node_count}")
    graph = NetworkGraph()
    for tail in range(1, node_count + 1):
        for head in range(1, node_count + 1):
            if tail != head:
                graph.add_edge(tail, head, capacity)
    return graph


def ring_with_chords(node_count: int, chord_span: int = 2, capacity: int = 1) -> NetworkGraph:
    """A bidirectional ring plus chords to nodes ``chord_span`` positions away.

    The chords raise the vertex connectivity above 2, which is what makes the
    topology usable for ``f >= 1`` (connectivity ``>= 2f + 1``).
    """
    if node_count < 3:
        raise GraphError(f"ring needs at least 3 nodes, got {node_count}")
    graph = NetworkGraph()
    edges = set()
    for index in range(node_count):
        node = index + 1
        neighbors = [((index + 1) % node_count) + 1]
        if chord_span % node_count not in (0, 1, node_count - 1):
            neighbors.append(((index + chord_span) % node_count) + 1)
        for neighbor in neighbors:
            for tail, head in ((node, neighbor), (neighbor, node)):
                if (tail, head) not in edges and tail != head:
                    edges.add((tail, head))
                    graph.add_edge(tail, head, capacity)
    return graph


def heterogeneous_bottleneck(
    node_count: int, fast_capacity: int, slow_capacity: int
) -> NetworkGraph:
    """A complete bidirectional graph where links touching the last node are slow.

    This is the kind of topology the paper's introduction motivates: when link
    capacities differ widely, capacity-oblivious BB algorithms that treat all
    links alike are throttled by the slow links, while a network-aware
    algorithm routes bulk data over the fast ones.
    """
    if node_count < 3:
        raise GraphError(f"topology needs at least 3 nodes, got {node_count}")
    if fast_capacity < 1 or slow_capacity < 1:
        raise GraphError("capacities must be positive")
    graph = NetworkGraph()
    slow_node = node_count
    for tail in range(1, node_count + 1):
        for head in range(1, node_count + 1):
            if tail == head:
                continue
            capacity = slow_capacity if slow_node in (tail, head) else fast_capacity
            graph.add_edge(tail, head, capacity)
    return graph


def layered_pipeline(layer_count: int, layer_size: int, capacity: int = 1) -> NetworkGraph:
    """A layered topology where the source reaches distant layers only via relays.

    Node 1 is the source; layer ``i`` (``i >= 1``) contains ``layer_size``
    nodes, each connected bidirectionally to every node of the adjacent
    layers.  The diameter grows with ``layer_count``, which is what makes
    propagation-delay pipelining (Figure 3) interesting.
    """
    if layer_count < 1 or layer_size < 1:
        raise GraphError("layer_count and layer_size must be >= 1")
    graph = NetworkGraph()
    graph.add_node(1)
    previous_layer: List[NodeId] = [1]
    next_id = 2
    for _ in range(layer_count):
        current_layer = list(range(next_id, next_id + layer_size))
        next_id += layer_size
        for upstream in previous_layer:
            for downstream in current_layer:
                graph.add_edge(upstream, downstream, capacity)
                graph.add_edge(downstream, upstream, capacity)
        # Fully connect nodes within a layer so the layer itself is robust.
        for a in current_layer:
            for b in current_layer:
                if a != b:
                    graph.add_edge(a, b, capacity)
        previous_layer = current_layer
    return graph


def random_connected_network(
    node_count: int,
    min_connectivity: int,
    rng: random.Random,
    max_capacity: int = 4,
    extra_edge_probability: float = 0.3,
) -> NetworkGraph:
    """A random bidirectional network with vertex connectivity at least ``min_connectivity``.

    Construction: start from a Harary-style circulant skeleton that guarantees
    the requested connectivity, add random extra links, then assign each link
    an independent random capacity in ``[1, max_capacity]`` (both directions of
    a link may get different capacities, making the network genuinely
    direction-asymmetric).

    Raises:
        GraphError: if the requested connectivity cannot be met with
            ``node_count`` nodes.
    """
    if min_connectivity < 1:
        raise GraphError("min_connectivity must be >= 1")
    if node_count <= min_connectivity:
        raise GraphError(
            f"connectivity {min_connectivity} impossible with only {node_count} nodes"
        )
    undirected_pairs = set()
    # Circulant skeleton: connect each node to the next ceil(min_connectivity / 2)
    # nodes around a ring, which yields vertex connectivity >= min_connectivity
    # (Harary graph construction).
    span = -(-min_connectivity // 2)
    for index in range(node_count):
        for offset in range(1, span + 1):
            a = index + 1
            b = ((index + offset) % node_count) + 1
            if a != b:
                undirected_pairs.add(frozenset((a, b)))
    if min_connectivity % 2 == 1 and node_count % 2 == 0:
        # Odd connectivity on an even cycle: add diameters, as in Harary graphs.
        half = node_count // 2
        for index in range(half):
            undirected_pairs.add(frozenset((index + 1, index + 1 + half)))
    elif min_connectivity % 2 == 1 and node_count % 2 == 1:
        # Odd node count: Harary's construction adds near-diameter chords.
        half = node_count // 2
        for index in range(half + 1):
            undirected_pairs.add(frozenset((index + 1, ((index + half) % node_count) + 1)))
    for a in range(1, node_count + 1):
        for b in range(a + 1, node_count + 1):
            if frozenset((a, b)) not in undirected_pairs and rng.random() < extra_edge_probability:
                undirected_pairs.add(frozenset((a, b)))
    graph = NetworkGraph()
    for node in range(1, node_count + 1):
        graph.add_node(node)
    for pair in sorted(undirected_pairs, key=lambda p: tuple(sorted(p))):
        a, b = sorted(pair)
        graph.add_edge(a, b, rng.randint(1, max_capacity))
        graph.add_edge(b, a, rng.randint(1, max_capacity))
    if vertex_connectivity(graph) < min_connectivity:  # pragma: no cover - construction guard
        raise GraphError("random network construction failed to reach the requested connectivity")
    return graph


def uniform_random_capacities(
    edges: Sequence[Edge], rng: random.Random, max_capacity: int = 4
) -> NetworkGraph:
    """Build a graph from the given directed edges with independent random capacities."""
    graph = NetworkGraph()
    for tail, head in edges:
        graph.add_edge(tail, head, rng.randint(1, max_capacity))
    return graph
