"""Undirected view of a directed capacitated graph.

Section 3 of the paper associates with every directed graph ``H(V, E)`` an
undirected graph ``\\bar H(V, \\bar E)`` in which the undirected edge
``{i, j}`` exists whenever either directed edge exists, and its capacity is
the *sum* of the capacities of ``(i, j)`` and ``(j, i)`` (a missing directed
edge counts as capacity 0).  The quantity ``U_k`` — which controls the
equality-check parameter ``rho_k`` — is defined via pairwise min-cuts in these
undirected views.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.exceptions import GraphError
from repro.graph.flow_cache import (
    cached_all_target_mincuts,
    cached_st_mincut,
    graph_signature,
)
from repro.graph.network_graph import NetworkGraph
from repro.types import NodeId, NodePair, node_pair


class UndirectedView:
    """The undirected, capacity-summed view ``\\bar H`` of a directed graph ``H``."""

    def __init__(self, directed: NetworkGraph) -> None:
        self._nodes = directed.nodes()
        capacities: Dict[NodePair, int] = {}
        for tail, head, capacity in directed.edges():
            pair = node_pair(tail, head)
            capacities[pair] = capacities.get(pair, 0) + capacity
        self._capacities = capacities
        # Lazily built symmetric digraph (and its cache signature) shared by
        # all min-cut queries on this view (the view itself is immutable
        # once constructed).
        self._digraph: NetworkGraph | None = None
        self._signature = None

    def _symmetric_digraph(self) -> NetworkGraph:
        if self._digraph is None:
            self._digraph = self.as_symmetric_digraph()
            self._signature = graph_signature(self._digraph)
        return self._digraph

    # -------------------------------------------------------------- accessors

    def nodes(self) -> List[NodeId]:
        """All node identifiers in sorted order."""
        return list(self._nodes)

    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, int]]:
        """Iterate over undirected edges as ``(min_node, max_node, capacity)``."""
        for pair in sorted(self._capacities, key=lambda p: tuple(sorted(p))):
            low, high = sorted(pair)
            yield low, high, self._capacities[pair]

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return len(self._capacities)

    def has_edge(self, a: NodeId, b: NodeId) -> bool:
        """Whether an undirected edge exists between ``a`` and ``b``."""
        return node_pair(a, b) in self._capacities

    def capacity(self, a: NodeId, b: NodeId) -> int:
        """Summed capacity of the undirected edge ``{a, b}``.

        Raises:
            GraphError: if no edge exists between the two nodes.
        """
        pair = node_pair(a, b)
        if pair not in self._capacities:
            raise GraphError(f"no undirected edge between {a} and {b}")
        return self._capacities[pair]

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Nodes adjacent to ``node`` in the undirected view, sorted."""
        if node not in self._nodes:
            raise GraphError(f"node {node} is not in the graph")
        adjacent = []
        for pair in self._capacities:
            if node in pair:
                (other,) = pair - {node}
                adjacent.append(other)
        return sorted(adjacent)

    def is_connected(self) -> bool:
        """Whether the undirected view is connected (vacuously true when empty)."""
        if not self._nodes:
            return True
        seen = {self._nodes[0]}
        frontier = [self._nodes[0]]
        while frontier:
            node = frontier.pop()
            for neighbor in self.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self._nodes)

    # ---------------------------------------------------------------- min-cuts

    def as_symmetric_digraph(self) -> NetworkGraph:
        """Represent the undirected view as a symmetric directed graph.

        Each undirected edge of capacity ``c`` becomes two anti-parallel
        directed edges of capacity ``c``.  Under this encoding a directed
        ``s``-``t`` max flow equals the undirected ``s``-``t`` min cut, which
        is how :meth:`mincut` is computed.
        """
        digraph = NetworkGraph()
        for node in self._nodes:
            digraph.add_node(node)
        for low, high, capacity in self.edges():
            digraph.add_edge(low, high, capacity)
            digraph.add_edge(high, low, capacity)
        return digraph

    def mincut(self, a: NodeId, b: NodeId) -> int:
        """The undirected min-cut (equivalently max-flow) between ``a`` and ``b``."""
        if a not in self._nodes or b not in self._nodes:
            raise GraphError("both endpoints must be nodes of the graph")
        digraph = self._symmetric_digraph()
        return cached_st_mincut(digraph, a, b, signature=self._signature)

    def min_pairwise_mincut(self) -> int:
        """``min_{i, j} MINCUT(\\bar H, i, j)`` over all node pairs.

        This is the inner minimum in the definition of ``U_k``.  For a graph
        with fewer than two nodes the quantity is undefined.

        Raises:
            GraphError: if the graph has fewer than two nodes.
        """
        nodes = self._nodes
        if len(nodes) < 2:
            raise GraphError("pairwise min-cut requires at least two nodes")
        if not self.is_connected():
            return 0
        digraph = self._symmetric_digraph()
        # The minimum over *all* pairs equals the undirected global min-cut
        # (every cut separates some pair, and every pair cut is a cut), which
        # the Gomory-Hu layer serves as the smallest tree edge — memoised per
        # signature, and exact even on decrementally repaired trees.
        from repro.graph.gomory_hu import cached_global_mincut

        value = cached_global_mincut(digraph, signature=self._signature)
        if value is not None:
            return value
        # Unreachable in practice (the symmetric digraph is by construction
        # undirected-equivalent) but kept as the oracle-path fallback: every
        # cut separates the anchor from some node, so anchoring is valid.
        anchor = nodes[0]
        return min(
            cached_all_target_mincuts(digraph, anchor, signature=self._signature).values()
        )

    def __repr__(self) -> str:
        return f"UndirectedView(nodes={self.node_count()}, edges={self.edge_count()})"
