"""The public NAB entry point: repeated Byzantine broadcast with amortised dispute control.

:class:`NetworkAwareBroadcast` runs a sequence of NAB instances on one
network, carrying the dispute state from instance to instance exactly as the
paper prescribes.  It accepts inputs as byte strings (the natural application
interface) and reports per-instance results plus aggregate throughput,
measured in bits per time unit under the link-capacity model.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from repro.core.dispute_state import DisputeState
from repro.core.instance import InstanceResult, NABInstance, summarize_instances
from repro.core.pipeline import PipelinedNABResult, run_pipelined
from repro.transport.network import NetworkFactory
from repro.exceptions import ProtocolError
from repro.graph.connectivity import meets_connectivity_requirement
from repro.graph.network_graph import NetworkGraph
from repro.transport.faults import FaultModel
from repro.types import NodeId, RunRecord, broadcast_spec_flags


@dataclass(frozen=True)
class NABRunResult:
    """Aggregate result of running ``Q`` NAB instances.

    Attributes:
        instances: Per-instance results, in execution order.
        total_elapsed: Sum of per-instance elapsed times.
        total_bits: Sum of bits sent on all links across all instances.
        throughput: ``(Q * L) / total_elapsed`` in bits per time unit
            (``None`` if no time elapsed).
        dispute_control_executions: How many instances ran Phase 3.
    """

    instances: Tuple[InstanceResult, ...]
    total_elapsed: Fraction
    total_bits: int
    throughput: Fraction | None
    dispute_control_executions: int

    def outputs_per_instance(self) -> List[Dict[NodeId, int]]:
        """The fault-free outputs of every instance, in order."""
        return [dict(result.outputs) for result in self.instances]

    def as_run_record(self, inputs: Sequence[bytes], source_faulty: bool) -> RunRecord:
        """Convert this run into the shared :class:`repro.types.RunRecord` shape.

        Args:
            inputs: The byte-string input of each instance, in execution order.
            source_faulty: Whether the broadcasting source is Byzantine
                (validity is unconstrained then).
        """
        outputs, link_totals, disputes, identified = summarize_instances(
            self.instances, inputs
        )
        agreement_ok, validity_ok = broadcast_spec_flags(outputs, inputs, source_faulty)
        return RunRecord(
            protocol="nab",
            instances=len(self.instances),
            payload_bits=sum(8 * len(value) for value in inputs),
            outputs=outputs,
            elapsed=self.total_elapsed,
            bits_sent=self.total_bits,
            link_bits=link_totals,
            dispute_control_executions=self.dispute_control_executions,
            agreement_ok=agreement_ok,
            validity_ok=validity_ok,
            metadata={
                "algorithm": "nab",
                "disputes": sorted(disputes),
                "identified_faulty": sorted(identified),
                "mismatch_instances": sum(
                    1 for result in self.instances if result.mismatch_announced
                ),
            },
        )


class NetworkAwareBroadcast:
    """Runs NAB repeatedly on a fixed network with a fixed (unknown) faulty set.

    Args:
        graph: The point-to-point network ``G`` with link capacities.
        source: The broadcasting node (the paper uses node 1).
        max_faults: The resilience parameter ``f``; requires
            ``n >= 3f + 1`` and network connectivity ``>= 2f + 1``.
        fault_model: Which nodes actually are Byzantine and how they behave.
            Defaults to no faults.
        coding_seed: Public seed for the coding matrices (part of the
            algorithm specification).
        validate_connectivity: Set to ``False`` to skip the (vertex-
            connectivity) precondition check, e.g. for deliberately invalid
            networks in experiments.
        network_factory: Builds the transport each instance runs on; defaults
            to the zero-delay :class:`repro.transport.network.SynchronousNetwork`.
            Pass a :class:`repro.transport.scheduled.ScheduledNetwork` factory
            to measure delivery on the discrete-event clock.

    Raises:
        ProtocolError: if the preconditions on ``n``, ``f``, the source or the
            connectivity are violated.
    """

    def __init__(
        self,
        graph: NetworkGraph,
        source: NodeId,
        max_faults: int,
        fault_model: FaultModel | None = None,
        coding_seed: int = 0,
        validate_connectivity: bool = True,
        network_factory: NetworkFactory | None = None,
        recorder=None,
    ) -> None:
        if not graph.has_node(source):
            raise ProtocolError(f"source {source} is not a node of the network")
        if max_faults < 0:
            raise ProtocolError(f"max_faults must be non-negative, got {max_faults}")
        node_count = graph.node_count()
        if node_count < 3 * max_faults + 1:
            raise ProtocolError(
                f"n={node_count} violates n >= 3f + 1 for f={max_faults}"
            )
        if validate_connectivity and not meets_connectivity_requirement(graph, max_faults):
            raise ProtocolError(
                f"network connectivity is below 2f + 1 = {2 * max_faults + 1}"
            )
        self.graph = graph if graph.is_frozen else graph.copy().freeze()
        self.source = source
        self.max_faults = max_faults
        self.fault_model = fault_model if fault_model is not None else FaultModel()
        self.fault_model.validate_for(node_count, max_faults)
        self.coding_seed = coding_seed
        self.network_factory = network_factory
        #: Optional :class:`repro.analysis.forensics.ForensicRecorder`; when
        #: set, every instance deposits its public ledger for the
        #: accountability pass.  ``None`` leaves behaviour untouched.
        self.recorder = recorder
        self.dispute_state = DisputeState(max_faults)
        self._instances_run = 0

    # ----------------------------------------------------------------- running

    def run_instance(self, value: bytes) -> InstanceResult:
        """Run one NAB instance broadcasting ``value`` (``L = 8 * len(value)`` bits)."""
        if not value:
            raise ProtocolError("the broadcast value must contain at least one byte")
        total_bits = 8 * len(value)
        input_bits = int.from_bytes(value, "big")
        executor = NABInstance(
            self.graph,
            self.source,
            self.max_faults,
            self.fault_model,
            self.dispute_state,
            instance=self._instances_run,
            coding_seed=self.coding_seed,
            network_factory=self.network_factory,
            recorder=self.recorder,
        )
        result = executor.run(input_bits, total_bits)
        self._instances_run += 1
        return result

    def run(self, values: Sequence[bytes]) -> NABRunResult:
        """Run one instance per value and aggregate timings and throughput."""
        if not values:
            raise ProtocolError("at least one value is required")
        results = [self.run_instance(value) for value in values]
        total_elapsed = sum((result.elapsed for result in results), Fraction(0))
        total_bits = sum(result.bits_sent for result in results)
        if total_elapsed > 0:
            payload_bits = sum(8 * len(value) for value in values)
            throughput: Fraction | None = Fraction(payload_bits) / total_elapsed
        else:
            throughput = None
        return NABRunResult(
            instances=tuple(results),
            total_elapsed=total_elapsed,
            total_bits=total_bits,
            throughput=throughput,
            dispute_control_executions=sum(
                1 for result in results if result.dispute_control_ran
            ),
        )

    def run_record(self, values: Sequence[bytes]) -> RunRecord:
        """Run one instance per value and return the shared :class:`RunRecord`.

        This is the entry point the experiment engine's protocol registry
        calls; :meth:`run` remains available when per-instance detail
        (:class:`InstanceResult`) is needed.
        """
        run = self.run(values)
        return run.as_run_record(values, self.fault_model.is_faulty(self.source))

    def run_pipelined(self, values: Sequence[bytes]) -> PipelinedNABResult:
        """Run one instance per value with Figure 3 pipelined timing.

        Instance semantics (outputs, bits, dispute-state evolution) are
        identical to :meth:`run`; completion time comes from simulating the
        pipeline dependency structure on the discrete-event kernel.  See
        :mod:`repro.core.pipeline`.
        """
        return run_pipelined(self, values)

    def run_pipelined_record(self, values: Sequence[bytes]) -> RunRecord:
        """Pipelined counterpart of :meth:`run_record` (measured timeline in metadata)."""
        run = self.run_pipelined(values)
        return run.as_run_record(values, self.fault_model.is_faulty(self.source))

    # ------------------------------------------------------------------ state

    @property
    def instances_run(self) -> int:
        """How many instances have been executed so far."""
        return self._instances_run

    def snapshot_state(self) -> Dict[str, object]:
        """The JSON-safe cross-instance state of this run.

        Everything an instance's execution depends on beyond the (immutable)
        constructor arguments: the accumulated dispute knowledge and the index
        of the next instance.  Together with the constructor arguments and the
        pending inputs this fully determines the remainder of the run —
        instances are deterministic — which is the contract the session
        service's snapshot/restore relies on.
        """
        return {
            "instances_run": self._instances_run,
            "dispute_state": self.dispute_state.to_jsonable(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Adopt a state previously captured by :meth:`snapshot_state`.

        The next :meth:`run_instance` call continues exactly where the
        captured run stopped: same instance index, same dispute state, so its
        outputs and bit counts equal the uninterrupted run's.

        Raises:
            ProtocolError: if the snapshot was taken with a different
                ``max_faults`` or claims a negative instance index.
        """
        restored = DisputeState.from_jsonable(state["dispute_state"])
        if restored.max_faults != self.max_faults:
            raise ProtocolError(
                f"snapshot was taken with max_faults={restored.max_faults}, "
                f"this run uses {self.max_faults}"
            )
        instances_run = int(state["instances_run"])
        if instances_run < 0:
            raise ProtocolError(
                f"snapshot claims a negative instance index {instances_run}"
            )
        self.dispute_state = restored
        self._instances_run = instances_run

    def current_instance_graph(self) -> NetworkGraph:
        """The graph ``G_k`` the next instance would run on."""
        return self.dispute_state.instance_graph(self.graph)
