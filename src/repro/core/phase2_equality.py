"""Phase 2: the Equality Check and Byzantine agreement on its outcome.

Step 2.1 runs Algorithm 1 (:mod:`repro.coding.equality_check`) on the instance
graph with parameter ``rho_k``.  Step 2.2 then has every node broadcast its
1-bit MISMATCH/NULL flag to the other participants with the classical
Byzantine broadcast (:class:`repro.classical.BroadcastDefault`), so that all
fault-free nodes agree on the *set* of announced flags and hence on whether
Phase 3 must run.  Faulty nodes may announce a flag unrelated to what their
check computed (hook ``equality_check_flag``); announcing a spurious MISMATCH
merely triggers (expensive but correct) dispute control, while suppressing a
genuine MISMATCH cannot hide a disagreement between *fault-free* nodes because
at least one fault-free node also detects it (property (EC)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.classical.broadcast_default import BroadcastDefault
from repro.coding.coding_matrix import CodingScheme
from repro.coding.equality_check import EqualityCheckOutcome, run_equality_check
from repro.exceptions import ProtocolError
from repro.graph.network_graph import NetworkGraph
from repro.transport.network import SynchronousNetwork
from repro.types import NodeId


@dataclass(frozen=True)
class Phase2Result:
    """Outcome of Phase 2.

    Attributes:
        check: The raw equality-check outcome (flags as computed locally,
            transmitted/expected coded vectors).
        announced_flags: The flag value of every participant *as agreed by all
            fault-free nodes* through the classical broadcast of step 2.2.
        mismatch_announced: Whether any announced flag is MISMATCH, i.e.
            whether Phase 3 must be performed.
    """

    check: EqualityCheckOutcome
    announced_flags: Dict[NodeId, bool]
    mismatch_announced: bool


def run_phase2(
    network: SynchronousNetwork,
    instance_graph: NetworkGraph,
    values: Mapping[NodeId, int],
    total_bits: int,
    scheme: CodingScheme,
    participants: Sequence[NodeId],
    participant_faults: int,
    relay_faults: int,
    instance: int = 0,
    equality_phase: str = "phase2_equality_check",
    flags_phase: str = "phase2_flag_broadcast",
) -> Phase2Result:
    """Execute Phase 2 (equality check + flag agreement).

    Args:
        network: Transport over the full network ``G`` (relay paths may leave
            ``G_k``).
        instance_graph: ``G_k`` — only its links carry coded symbols.
        values: Each participant's Phase 1 value.
        total_bits: ``L``.
        scheme: Coding scheme for this instance.
        participants: ``V_k``.
        participant_faults: Residual fault bound among the participants.
        relay_faults: Fault bound for the disjoint-path relay (the original
            ``f`` — excluded faulty nodes can still corrupt relay paths).
        instance: Instance number forwarded to Byzantine hooks.
        equality_phase: Accounting phase for the coded-symbol round.
        flags_phase: Accounting phase for the 1-bit flag broadcasts.
    """
    check = run_equality_check(
        network,
        instance_graph,
        values,
        total_bits,
        scheme,
        instance=instance,
        phase=equality_phase,
    )
    fault_model = network.fault_model
    strategy = fault_model.strategy
    flags_to_announce: Dict[NodeId, bool] = {}
    for node in participants:
        true_flag = check.flags.get(node, False)
        if fault_model.is_faulty(node):
            flags_to_announce[node] = bool(
                strategy.equality_check_flag(instance, node, true_flag)
            )
        else:
            flags_to_announce[node] = true_flag

    broadcaster = BroadcastDefault(
        network,
        participants,
        participant_faults,
        instance=instance,
        relay_max_faults=relay_faults,
    )
    per_receiver = broadcaster.broadcast_from_all(
        flags_to_announce, bit_size=1, phase=flags_phase, context="equality_flag"
    )
    announced = _agreed_flag_vector(per_receiver, participants)
    return Phase2Result(
        check=check,
        announced_flags=announced,
        mismatch_announced=any(announced.values()),
    )


def _agreed_flag_vector(
    per_receiver: Dict[NodeId, Dict[NodeId, object]],
    participants: Sequence[NodeId],
) -> Dict[NodeId, bool]:
    """Collapse the per-receiver flag vectors into the single agreed vector.

    Agreement of the classical broadcast guarantees every fault-free receiver
    holds the same vector; this helper verifies that (as a sanity check on the
    substrate) and normalises non-boolean junk announced by faulty nodes to
    ``True``/``False`` (anything that is not exactly ``False``/``None`` counts
    as a MISMATCH announcement, which is the conservative reading).
    """
    if not per_receiver:
        raise ProtocolError("no fault-free receiver observed the flag broadcast")
    # Dict equality is order-insensitive, so the vectors can be compared
    # directly without materialising a sorted tuple per receiver.
    receivers = iter(per_receiver.values())
    reference_vector = next(receivers)
    for other in receivers:
        if other != reference_vector:
            raise ProtocolError(
                "fault-free nodes disagree on announced flags; classical broadcast violated"
            )
    agreed: Dict[NodeId, bool] = {}
    for node in participants:
        value = reference_vector.get(node)
        agreed[node] = bool(value) if value is not None else False
    return agreed
