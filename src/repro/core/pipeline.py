"""Pipelined multi-instance NAB execution on the discrete-event kernel.

The paper's throughput claims rest on pipelining (Appendix D / Figure 3):
under per-hop propagation a Phase 1 symbol cannot be forwarded before it has
been fully received, so a naive sequential execution pays the broadcast depth
``D`` on *every* instance, while the pipelined execution divides time into
rounds of ``L/gamma + L/rho + overhead`` and lets instance ``q + 1`` enter the
network while instance ``q`` is still propagating — after a fill-in latency of
``D - 1`` rounds one instance completes per round.

:func:`run_pipelined` turns that picture into a measured execution.  Each
instance still runs through the real three-phase machinery (so outputs, bits,
dispute-state evolution and spec flags are identical to the sequential path),
and the *timing* is obtained by simulating the Figure 3 dependency structure
with :func:`repro.sched.simulate_tasks`:

* stage task ``(q, h)`` — instance ``q``'s round at hop depth ``h`` — lasts
  one full round of that instance (its measured Phase 1 time plus its measured
  equality/flag time) and depends on ``(q, h - 1)`` (its own data must reach
  hop ``h - 1`` first) and ``(q - 1, h)`` (the hop-``h`` links are busy with
  the previous instance until then);
* dispute control is a global barrier: when instance ``q`` runs Phase 3, a
  stall task is inserted that every later instance must wait for, since
  dispute control occupies the whole network.

In the fault-free steady state all rounds are equal and the simulated
makespan collapses to exactly ``(Q + D - 1)`` rounds — the
:func:`repro.capacity.pipelining.pipelined_schedule` total, Fraction-exact —
while the sequential comparator (same propagation model, no overlap) pays
``Q * (D * s1 + s2)``.  Both timelines come out of the same event kernel, so
the measured speedup is an executed quantity, not a formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.capacity.pipelining import PipelineSchedule, pipelined_schedule
from repro.core.instance import InstanceResult, summarize_instances
from repro.exceptions import ProtocolError
from repro.sched.kernel import Task, TaskTimeline, simulate_tasks
from repro.types import NodeId, RunRecord, broadcast_spec_flags

#: Accounting phase names whose durations form the two pipeline stages.
_PHASE1 = "phase1_broadcast"
_PHASE3 = "phase3_dispute_control"


@dataclass(frozen=True)
class StageTiming:
    """Measured extent of one pipeline stage (instance ``q`` at hop ``h``)."""

    instance: int
    hop: int
    start: Fraction
    end: Fraction


@dataclass(frozen=True)
class _InstanceStages:
    """Per-instance stage durations extracted from an executed instance."""

    phase1: Fraction
    remainder: Fraction
    dispute: Fraction
    depth: int

    @property
    def round_length(self) -> Fraction:
        return self.phase1 + self.remainder


@dataclass(frozen=True)
class PipelinedNABResult:
    """Aggregate result of running ``Q`` NAB instances pipelined.

    Attributes:
        instances: Per-instance results (identical to the sequential path).
        total_elapsed: Measured pipelined completion time (event-simulated).
        sequential_elapsed: Measured completion of the unpipelined execution
            under the same per-hop propagation model (the comparator).
        total_bits: Bits sent on all links (pipelining reorders, never adds).
        throughput: ``Q * L / total_elapsed`` in bits per time unit.
        dispute_control_executions: How many instances ran Phase 3.
        depth: Steady-state broadcast depth ``D`` (last instance's packing).
        round_length: Steady-state round duration (last instance's round).
        round_overhead: ``round_length - L/gamma - L/rho`` of the steady
            state — the per-round cost beyond the two ideal terms (flag
            broadcasts, ceil rounding, capacity shares); ``None`` when the
            run never reached a homogeneous steady state.
        analytic: The Figure 3 closed form evaluated at the steady-state
            parameters (``None`` when the run was not homogeneous); in a
            fault-free run ``analytic.total_time == total_elapsed`` exactly.
        stage_timeline: Measured ``(instance, hop, start, end)`` stages in
            completion order — the event timeline experiments persist.
    """

    instances: Tuple[InstanceResult, ...]
    total_elapsed: Fraction
    sequential_elapsed: Fraction
    total_bits: int
    throughput: Optional[Fraction]
    dispute_control_executions: int
    depth: int
    round_length: Fraction
    round_overhead: Optional[Fraction]
    analytic: Optional[PipelineSchedule]
    stage_timeline: Tuple[StageTiming, ...]

    @property
    def speedup(self) -> Optional[Fraction]:
        """Measured sequential / pipelined completion ratio (``None`` if degenerate)."""
        if self.total_elapsed <= 0:
            return None
        return self.sequential_elapsed / self.total_elapsed

    def outputs_per_instance(self) -> List[Dict[NodeId, int]]:
        """The fault-free outputs of every instance, in order."""
        return [dict(result.outputs) for result in self.instances]

    def as_run_record(self, inputs: Sequence[bytes], source_faulty: bool) -> RunRecord:
        """Summarise the pipelined run in the shared :class:`RunRecord` shape.

        ``elapsed`` is the pipelined completion time; the measured event
        timeline, the sequential comparator and the analytic schedule land in
        ``metadata`` (JSON-safe, rationals as ``"p/q"`` strings).
        """
        outputs, link_totals, disputes, identified = summarize_instances(
            self.instances, inputs
        )
        agreement_ok, validity_ok = broadcast_spec_flags(outputs, inputs, source_faulty)
        speedup = self.speedup
        metadata: Dict[str, object] = {
            "algorithm": "nab",
            "execution": "pipelined",
            "disputes": sorted(disputes),
            "identified_faulty": sorted(identified),
            "mismatch_instances": sum(
                1 for result in self.instances if result.mismatch_announced
            ),
            "pipeline_depth": self.depth,
            "round_length": str(self.round_length),
            "round_overhead": (
                None if self.round_overhead is None else str(self.round_overhead)
            ),
            "sequential_elapsed": str(self.sequential_elapsed),
            "speedup": None if speedup is None else str(speedup),
            "analytic_total": (
                None if self.analytic is None else str(self.analytic.total_time)
            ),
            "matches_analytic": (
                None
                if self.analytic is None
                else self.analytic.total_time == self.total_elapsed
            ),
            "stage_timeline": [
                {
                    "instance": stage.instance,
                    "hop": stage.hop,
                    "start": str(stage.start),
                    "end": str(stage.end),
                }
                for stage in self.stage_timeline
            ],
        }
        return RunRecord(
            protocol="nab",
            instances=len(self.instances),
            payload_bits=sum(8 * len(value) for value in inputs),
            outputs=outputs,
            elapsed=self.total_elapsed,
            bits_sent=self.total_bits,
            link_bits=link_totals,
            dispute_control_executions=self.dispute_control_executions,
            agreement_ok=agreement_ok,
            validity_ok=validity_ok,
            metadata=metadata,
        )


def _stages_of(result: InstanceResult) -> _InstanceStages:
    """Split one executed instance into its pipeline stage durations.

    Phase 1 and Phase 3 durations come from the per-phase accounting; the
    remainder (equality check, flag broadcasts, and any propagation latency a
    scheduled transport measured on top) is everything else in ``elapsed``.
    """
    phase1 = Fraction(0)
    dispute = Fraction(0)
    for timing in result.phase_timings:
        if timing.name == _PHASE1:
            phase1 += timing.time_units
        elif timing.name == _PHASE3:
            dispute += timing.time_units
    remainder = result.elapsed - phase1 - dispute
    if remainder < 0:  # pragma: no cover - accounting is additive
        raise ProtocolError("instance elapsed is below its phase totals")
    return _InstanceStages(
        phase1=phase1,
        remainder=remainder,
        dispute=dispute,
        depth=result.phase1_depth if result.phase1_depth is not None else 1,
    )


def _pipeline_tasks(stages: Sequence[_InstanceStages], dispute_ran: Sequence[bool]) -> List[Task]:
    """The Figure 3 dependency graph over all instances' stage tasks."""
    tasks: List[Task] = []
    previous_barrier = None
    for q, stage in enumerate(stages):
        for hop in range(1, stage.depth + 1):
            deps: List[object] = []
            if hop > 1:
                deps.append(("stage", q, hop - 1))
            if q > 0:
                # The hop-h links are busy with the previous instance's round
                # (clamped to its depth when packings differ across instances).
                deps.append(("stage", q - 1, min(hop, stages[q - 1].depth)))
            if hop == 1 and previous_barrier is not None:
                deps.append(previous_barrier)
            tasks.append(
                Task(
                    name=("stage", q, hop),
                    duration=stage.round_length,
                    deps=tuple(deps),
                )
            )
        if dispute_ran[q]:
            # Dispute control occupies the whole network: later instances
            # stall until it completes, then the pipeline refills.
            tasks.append(
                Task(
                    name=("dc", q),
                    duration=stage.dispute,
                    deps=(("stage", q, stage.depth),),
                )
            )
            previous_barrier = ("dc", q)
    return tasks


def _sequential_tasks(
    stages: Sequence[_InstanceStages], dispute_ran: Sequence[bool]
) -> List[Task]:
    """The unpipelined comparator: per-hop propagation, no overlap at all."""
    tasks: List[Task] = []
    previous_tail = None
    for q, stage in enumerate(stages):
        for hop in range(1, stage.depth + 1):
            deps: List[object] = []
            if hop > 1:
                deps.append(("seq", q, hop - 1))
            elif previous_tail is not None:
                deps.append(previous_tail)
            tasks.append(
                Task(name=("seq", q, hop), duration=stage.phase1, deps=tuple(deps))
            )
        tail_duration = stage.remainder + (stage.dispute if dispute_ran[q] else Fraction(0))
        tasks.append(
            Task(
                name=("seq-tail", q),
                duration=tail_duration,
                deps=(("seq", q, stage.depth),),
            )
        )
        previous_tail = ("seq-tail", q)
    return tasks


def _steady_state(
    results: Sequence[InstanceResult],
    stages: Sequence[_InstanceStages],
    inputs: Sequence[bytes],
) -> Tuple[Optional[Fraction], Optional[PipelineSchedule]]:
    """The Figure 3 closed form, when the run is a homogeneous steady state.

    Requires every instance to share the payload length, the instance
    parameters (``gamma_k``/``rho_k``), the packing depth and the round
    length, with no dispute control — exactly the premises of the Figure 3
    round structure.  Returns ``(round_overhead, schedule)`` or
    ``(None, None)``.
    """
    if not results:
        return None, None
    if any(result.dispute_control_ran for result in results):
        return None, None
    first = results[0]
    if first.parameters is None:
        return None, None
    lengths = {len(value) for value in inputs}
    if len(lengths) != 1:
        return None, None
    gammas = {
        result.parameters.gamma for result in results if result.parameters is not None
    }
    rhos = {result.parameters.rho for result in results if result.parameters is not None}
    depths = {stage.depth for stage in stages}
    rounds = {stage.round_length for stage in stages}
    if len(gammas) != 1 or len(rhos) != 1 or len(depths) != 1 or len(rounds) != 1:
        return None, None
    if any(result.parameters is None for result in results):
        return None, None
    total_bits = 8 * lengths.pop()
    gamma = gammas.pop()
    rho = rhos.pop()
    overhead = rounds.pop() - Fraction(total_bits, gamma) - Fraction(total_bits, rho)
    schedule = pipelined_schedule(
        total_bits,
        gamma,
        rho,
        depths.pop(),
        len(results),
        flag_overhead=overhead,
    )
    return overhead, schedule


def run_pipelined(nab, values: Sequence[bytes]) -> PipelinedNABResult:
    """Run one NAB instance per value with Figure 3 pipelined timing.

    Args:
        nab: A :class:`repro.core.nab.NetworkAwareBroadcast` (any state —
            dispute carry-over across calls works exactly as for ``run``).
        values: One byte-string input per instance.

    Raises:
        ProtocolError: if no values are given.
    """
    if not values:
        raise ProtocolError("at least one value is required")
    results = [nab.run_instance(value) for value in values]
    stages = [_stages_of(result) for result in results]
    dispute_ran = [result.dispute_control_ran for result in results]

    pipeline_timeline: TaskTimeline = simulate_tasks(_pipeline_tasks(stages, dispute_ran))
    sequential_timeline: TaskTimeline = simulate_tasks(
        _sequential_tasks(stages, dispute_ran)
    )
    total_elapsed = pipeline_timeline.makespan
    sequential_elapsed = sequential_timeline.makespan

    stage_timeline = tuple(
        StageTiming(instance=name[1], hop=name[2], start=timing.start, end=timing.end)
        for timing in pipeline_timeline.timings()
        for name in (timing.name,)
        if name[0] == "stage"
    )
    total_bits = sum(result.bits_sent for result in results)
    payload_bits = sum(8 * len(value) for value in values)
    throughput = Fraction(payload_bits) / total_elapsed if total_elapsed > 0 else None
    round_overhead, analytic = _steady_state(results, stages, values)
    return PipelinedNABResult(
        instances=tuple(results),
        total_elapsed=total_elapsed,
        sequential_elapsed=sequential_elapsed,
        total_bits=total_bits,
        throughput=throughput,
        dispute_control_executions=sum(1 for ran in dispute_ran if ran),
        depth=stages[-1].depth,
        round_length=stages[-1].round_length,
        round_overhead=round_overhead,
        analytic=analytic,
        stage_timeline=stage_timeline,
    )
