"""Phase 3: dispute control (steps DC1–DC4 of Appendix B).

Dispute control runs only when some node announced MISMATCH in step 2.2.  Its
job is twofold: produce a *correct* output for the current instance (as a
byproduct of everyone reliably re-broadcasting everything), and learn something
about the identity of at least one faulty node — either a new node pair "in
dispute" (at least one of the two is faulty) or a node identified as faulty
outright.

* **DC1** — every node in ``V_k`` Byzantine-broadcasts the messages it claims
  to have sent and received during Phases 1 and 2; the source additionally
  broadcasts its ``L``-bit input.  All fault-free nodes thus agree on a single
  global "claims table" and adopt the source's broadcast input as the
  instance output.
* **DC2** — if node ``a``'s claim of what it sent to ``b`` differs from ``b``'s
  claim of what it received from ``a``, the pair ``{a, b}`` is in dispute.
* **DC3** — NAB is deterministic, so each node's claimed *sent* messages (and
  announced flag) must be the function of its claimed *received* messages
  (and, for the source, its broadcast input) that the algorithm prescribes;
  any inconsistency identifies that node as faulty.
* **DC4** — the intersection of all ``<= f``-node sets explaining the disputes
  is certainly faulty (computed by :class:`repro.core.dispute_state.DisputeState`).

Fault-free nodes are never found in dispute with each other and never fail the
DC3 consistency check, because their claims are the literal transcript of an
honest execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Set, Tuple

from repro.classical.broadcast_default import BroadcastDefault
from repro.coding.coding_matrix import CodingScheme, encode_on_edges
from repro.coding.equality_check import EqualityCheckOutcome, value_to_symbols
from repro.exceptions import ProtocolError
from repro.graph.network_graph import NetworkGraph
from repro.core.phase1_broadcast import Phase1Transcript
from repro.gf.symbols import symbols_to_bits
from repro.transport.network import SynchronousNetwork
from repro.types import NodeId, NodePair, node_pair

#: Output adopted when the source's broadcast input is missing or malformed.
DEFAULT_OUTPUT = 0


@dataclass(frozen=True)
class Phase3Result:
    """Outcome of one dispute-control execution.

    Attributes:
        output_bits: The instance output all fault-free nodes adopt.
        new_disputes: Node pairs found in dispute during this execution.
        identified_faulty: Nodes identified as faulty by DC3 in this execution.
        claims: The agreed claims table (useful for diagnostics and tests).
    """

    output_bits: int
    new_disputes: Tuple[NodePair, ...]
    identified_faulty: Tuple[NodeId, ...]
    claims: Dict[NodeId, Dict[str, Any]] = field(default_factory=dict)


def honest_claims(
    node: NodeId,
    source: NodeId,
    input_bits: int | None,
    phase1: Phase1Transcript,
    equality: EqualityCheckOutcome,
    instance_graph: NetworkGraph,
) -> Dict[str, Any]:
    """The claims an honest ``node`` makes during DC1, straight from its transcript."""
    claims: Dict[str, Any] = {
        "phase1_sent": {},
        "phase1_received": {},
        "equality_sent": {},
        "equality_received": {},
    }
    if node == source:
        claims["input"] = input_bits
    for (tree_index, parent, child), symbol in phase1.sent_symbols.items():
        if parent == node:
            claims["phase1_sent"][(tree_index, child)] = symbol
    for (tree_index, child), symbol in phase1.received_symbols.items():
        if child == node:
            claims["phase1_received"][tree_index] = symbol
    for (tail, head), vector in equality.sent_vectors.items():
        if tail == node:
            claims["equality_sent"][head] = tuple(vector)
        if head == node:
            claims["equality_received"][tail] = tuple(vector)
    # What a node *received* on an incoming edge is what was delivered to it;
    # sent_vectors holds the delivered (post-corruption) vectors, so the loop
    # above already recorded the honest receive claims.
    del instance_graph  # structure is implied by the transcript keys
    return claims


def claims_bit_size(claims: Mapping[str, Any], symbol_bits: int, scheme: CodingScheme) -> int:
    """Approximate size in bits of a claims payload (for accounting purposes)."""
    total = 0
    if claims.get("input") is not None:
        total += max(1, int(claims["input"]).bit_length())
    total += len(claims.get("phase1_sent", {})) * symbol_bits
    total += len(claims.get("phase1_received", {})) * symbol_bits
    for vector in claims.get("equality_sent", {}).values():
        total += len(vector) * scheme.symbol_bits
    for vector in claims.get("equality_received", {}).values():
        total += len(vector) * scheme.symbol_bits
    return max(1, total)


def run_phase3(
    network: SynchronousNetwork,
    instance_graph: NetworkGraph,
    source: NodeId,
    input_bits: int,
    total_bits: int,
    phase1: Phase1Transcript,
    phase2_check: EqualityCheckOutcome,
    announced_flags: Mapping[NodeId, bool],
    scheme: CodingScheme,
    participants: Sequence[NodeId],
    participant_faults: int,
    relay_faults: int,
    instance: int = 0,
    phase: str = "phase3_dispute_control",
) -> Phase3Result:
    """Execute dispute control and return the agreed output plus new evidence."""
    fault_model = network.fault_model
    strategy = fault_model.strategy
    broadcaster = BroadcastDefault(
        network,
        participants,
        participant_faults,
        instance=instance,
        relay_max_faults=relay_faults,
    )

    # ------------------------------------------------------------------- DC1
    agreed_claims: Dict[NodeId, Dict[str, Any]] = {}
    for node in sorted(participants):
        truthful = honest_claims(
            node,
            source,
            input_bits if node == source else None,
            phase1,
            phase2_check,
            instance_graph,
        )
        outgoing = truthful
        if fault_model.is_faulty(node):
            outgoing = strategy.dispute_claims(instance, node, truthful)
        size = claims_bit_size(outgoing, phase1.symbol_bits, scheme)
        decided = broadcaster.broadcast(
            node, outgoing, size, phase, context=f"dispute_claims|origin={node}"
        )
        agreed_claims[node] = _any_agreed_value(decided)

    output_bits = _extract_output(agreed_claims.get(source, {}), total_bits)

    # ------------------------------------------------------------------- DC2
    new_disputes: Set[NodePair] = set()
    for tail, head, _capacity in instance_graph.edges():
        if tail not in agreed_claims or head not in agreed_claims:
            continue
        if _edge_claims_conflict(agreed_claims[tail], agreed_claims[head], tail, head, phase1):
            new_disputes.add(node_pair(tail, head))

    # ------------------------------------------------------------------- DC3
    identified_faulty: Set[NodeId] = set()
    for node in sorted(participants):
        claims = agreed_claims.get(node)
        if claims is None or not isinstance(claims, dict):
            identified_faulty.add(node)
            continue
        if not _claims_consistent(
            node,
            claims,
            source,
            output_bits if node == source else None,
            total_bits,
            phase1,
            scheme,
            instance_graph,
            announced_flags.get(node, False),
        ):
            identified_faulty.add(node)

    return Phase3Result(
        output_bits=output_bits,
        new_disputes=tuple(sorted(new_disputes, key=lambda pair: tuple(sorted(pair)))),
        identified_faulty=tuple(sorted(identified_faulty)),
        claims=agreed_claims,
    )


# --------------------------------------------------------------------- helpers


def _any_agreed_value(decided: Mapping[NodeId, Any]) -> Any:
    """All fault-free receivers agree, so return any one of their decided values."""
    if not decided:
        raise ProtocolError("classical broadcast produced no fault-free outputs")
    values = list(decided.values())
    reference = repr(values[0])
    for value in values[1:]:
        if repr(value) != reference:
            raise ProtocolError("fault-free nodes disagree on broadcast claims")
    return values[0]


def _extract_output(source_claims: Mapping[str, Any], total_bits: int) -> int:
    """The instance output: the source's broadcast input, or the default value."""
    value = source_claims.get("input") if isinstance(source_claims, Mapping) else None
    if not isinstance(value, int) or isinstance(value, bool):
        return DEFAULT_OUTPUT
    if value < 0 or value >= (1 << total_bits):
        return DEFAULT_OUTPUT
    return value


def _edge_claims_conflict(
    tail_claims: Mapping[str, Any],
    head_claims: Mapping[str, Any],
    tail: NodeId,
    head: NodeId,
    phase1: Phase1Transcript,
) -> bool:
    """DC2 check for one directed edge: sender's 'sent' vs receiver's 'received'."""
    if not isinstance(tail_claims, Mapping) or not isinstance(head_claims, Mapping):
        return False
    sent_phase1 = tail_claims.get("phase1_sent", {}) or {}
    received_phase1 = head_claims.get("phase1_received", {}) or {}
    for tree_index, tree in enumerate(phase1.trees):
        if tree.parents.get(head) != tail:
            continue
        claimed_sent = sent_phase1.get((tree_index, head))
        claimed_received = received_phase1.get(tree_index)
        if claimed_sent != claimed_received:
            return True
    sent_equality = tail_claims.get("equality_sent", {}) or {}
    received_equality = head_claims.get("equality_received", {}) or {}
    if head in sent_equality or tail in received_equality:
        if tuple(sent_equality.get(head, ())) != tuple(received_equality.get(tail, ())):
            return True
    return False


def _claims_consistent(
    node: NodeId,
    claims: Mapping[str, Any],
    source: NodeId,
    broadcast_input: int | None,
    total_bits: int,
    phase1: Phase1Transcript,
    scheme: CodingScheme,
    instance_graph: NetworkGraph,
    announced_flag: bool,
) -> bool:
    """DC3 check: are the node's claims consistent with the deterministic algorithm?"""
    try:
        phase1_sent = dict(claims.get("phase1_sent", {}) or {})
        phase1_received = dict(claims.get("phase1_received", {}) or {})
        equality_sent = dict(claims.get("equality_sent", {}) or {})
        equality_received = dict(claims.get("equality_received", {}) or {})
    except (TypeError, ValueError):
        return False

    gamma = len(phase1.trees)
    symbol_bits = phase1.symbol_bits

    # Determine the value the node's later actions must be consistent with.
    if node == source:
        if broadcast_input is None:
            return False
        value_bits = broadcast_input
        own_symbols = _source_symbols(value_bits, total_bits, symbol_bits, gamma)
    else:
        own_symbols = []
        for tree_index in range(gamma):
            symbol = phase1_received.get(tree_index)
            if not isinstance(symbol, int) or symbol < 0 or symbol >= (1 << symbol_bits):
                return False
            own_symbols.append(symbol)
        value_bits = symbols_to_bits(own_symbols, symbol_bits) & ((1 << total_bits) - 1)

    # Phase 1 sends must forward exactly what was received (or derived from the input).
    for tree_index, tree in enumerate(phase1.trees):
        for child in tree.children_of(node):
            expected_symbol = own_symbols[tree_index]
            if phase1_sent.get((tree_index, child)) != expected_symbol:
                return False

    # Equality-check sends must equal X_i C_e for every outgoing edge of G_k.
    try:
        value_symbols = value_to_symbols(value_bits, total_bits, scheme)
    except ProtocolError:
        return False
    # One stacked pass over every incident edge of G_k (outgoing sends plus
    # the incoming expectations checked below) instead of a per-edge loop.
    out_edge_list = [(node, head) for _tail, head, _cap in instance_graph.out_edges(node)]
    in_edge_list = [(tail, node) for tail, _head, _cap in instance_graph.in_edges(node)]
    expected_coded = encode_on_edges(
        scheme, value_symbols, out_edge_list + in_edge_list
    )
    for _tail, head, _capacity in instance_graph.out_edges(node):
        expected_vector = tuple(expected_coded[(node, head)])
        if tuple(equality_sent.get(head, ())) != expected_vector:
            return False

    # The announced flag must match what the claimed receptions imply.
    implied_flag = False
    for tail, _head, _capacity in instance_graph.in_edges(node):
        expected_vector = tuple(expected_coded[(tail, node)])
        claimed_received = tuple(equality_received.get(tail, ()))
        if claimed_received != expected_vector:
            implied_flag = True
    if bool(announced_flag) != implied_flag:
        return False
    return True


def _source_symbols(
    value_bits: int, total_bits: int, symbol_bits: int, gamma: int
) -> List[int]:
    """The per-tree symbols an honest source derives from its input."""
    from repro.gf.symbols import bits_to_symbols

    symbols = bits_to_symbols(value_bits, total_bits, symbol_bits)
    if len(symbols) < gamma:
        symbols = [0] * (gamma - len(symbols)) + symbols
    return symbols
