"""Phase 1: unreliable broadcast of the ``L``-bit input over packed arborescences.

The source splits its input into ``gamma_k`` symbols of ``ceil(L / gamma_k)``
bits and ships the ``t``-th symbol down the ``t``-th arborescence of a
capacity-disjoint packing of ``G_k`` rooted at the source.  Every relay simply
forwards the symbol it received to its children in that tree; no attempt is
made to detect or tolerate misbehaviour.  Faulty nodes may therefore corrupt
what flows through them (hooks ``phase1_source_symbol`` for an equivocating
source and ``phase1_forward_symbol`` for corrupting relays), which yields the
four possible Phase 1 outcomes the paper enumerates.

The phase charges ``ceil(L / gamma_k)`` bits to every tree edge; since the
packing respects link capacities, the elapsed time of the phase is exactly
``ceil(L / gamma_k)`` time units on unit-bottleneck links and never more than
``ceil(L / gamma_k)`` times the worst per-unit share in general.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ProtocolError
from repro.gf.symbols import bits_to_symbols, symbol_size_for, symbols_to_bits
from repro.graph.network_graph import NetworkGraph
from repro.graph.spanning_trees import Arborescence, pack_arborescences
from repro.transport.network import SynchronousNetwork
from repro.types import Edge, NodeId


@dataclass(frozen=True)
class Phase1Transcript:
    """What actually happened on the wire during Phase 1 (for dispute control).

    Attributes:
        values: The ``L``-bit value (as an integer) each node of ``G_k`` ends
            Phase 1 holding.  The source's entry is its own input.
        symbol_bits: Bits per phase-1 symbol (``ceil(L / gamma_k)``).
        trees: The arborescences used, in symbol order.
        sent_symbols: ``(tree_index, parent, child) -> symbol`` actually
            transmitted (post any Byzantine corruption by the sender).
        received_symbols: ``(tree_index, child) -> symbol`` as delivered.
    """

    values: Dict[NodeId, int]
    symbol_bits: int
    trees: Tuple[Arborescence, ...]
    sent_symbols: Dict[Tuple[int, NodeId, NodeId], int] = field(default_factory=dict)
    received_symbols: Dict[Tuple[int, NodeId], int] = field(default_factory=dict)


def run_phase1(
    network: SynchronousNetwork,
    instance_graph: NetworkGraph,
    source: NodeId,
    input_bits: int,
    total_bits: int,
    gamma: int,
    instance: int = 0,
    phase: str = "phase1_broadcast",
    trees: Sequence[Arborescence] | None = None,
) -> Phase1Transcript:
    """Execute Phase 1 on ``instance_graph``.

    Args:
        network: Transport used for accounting and fault-model lookup.
        instance_graph: ``G_k``.
        source: The broadcasting node.
        input_bits: The source's ``L``-bit input as an integer.
        total_bits: ``L``.
        gamma: ``gamma_k`` — number of arborescences / symbols.
        instance: Instance number passed to Byzantine hooks.
        phase: Accounting phase name.
        trees: Pre-packed arborescences (packed fresh when omitted).

    Returns:
        The full transcript, including the value each node reconstructed.

    Raises:
        ProtocolError: if the input does not fit in ``total_bits`` bits or the
            number of supplied trees does not match ``gamma``.
    """
    if input_bits < 0 or input_bits >= (1 << total_bits):
        raise ProtocolError(f"input does not fit in {total_bits} bits")
    if gamma < 1:
        raise ProtocolError(f"gamma must be >= 1, got {gamma}")
    if trees is None:
        trees = pack_arborescences(instance_graph, source, gamma)
    if len(trees) != gamma:
        raise ProtocolError(f"expected {gamma} arborescences, got {len(trees)}")

    fault_model = network.fault_model
    strategy = fault_model.strategy
    symbol_bits = symbol_size_for(total_bits, gamma)
    source_symbols = bits_to_symbols(input_bits, total_bits, symbol_bits)
    # bits_to_symbols produces ceil(total_bits / symbol_bits) symbols, which may
    # be fewer than gamma when gamma does not divide total_bits; pad with zero
    # symbols at the front so exactly one symbol rides each arborescence.
    if len(source_symbols) < gamma:
        source_symbols = [0] * (gamma - len(source_symbols)) + source_symbols

    sent_symbols: Dict[Tuple[int, NodeId, NodeId], int] = {}
    received_symbols: Dict[Tuple[int, NodeId], int] = {}
    per_node_symbols: Dict[NodeId, List[int]] = {
        node: [0] * gamma for node in instance_graph.nodes()
    }
    per_node_symbols[source] = list(source_symbols)

    for tree_index, tree in enumerate(trees):
        # Propagate the symbol down the tree in breadth-first order so a
        # relay's outgoing symbol is whatever it just received (or corrupted).
        holding: Dict[NodeId, int] = {source: source_symbols[tree_index]}
        frontier: List[NodeId] = [source]
        while frontier:
            parent = frontier.pop(0)
            for child in tree.children_of(parent):
                true_symbol = holding[parent]
                outgoing = true_symbol
                if fault_model.is_faulty(parent):
                    if parent == source:
                        outgoing = strategy.phase1_source_symbol(
                            instance, tree_index, child, true_symbol
                        )
                    else:
                        outgoing = strategy.phase1_forward_symbol(
                            instance, parent, tree_index, child, true_symbol
                        )
                    # A link message physically carries symbol_bits bits, so
                    # whatever the adversary injects is truncated to that size.
                    outgoing &= (1 << symbol_bits) - 1
                sent_symbols[(tree_index, parent, child)] = outgoing
                received_symbols[(tree_index, child)] = outgoing
                holding[child] = outgoing
                per_node_symbols[child][tree_index] = outgoing
                frontier.append(child)

    # One batched transmission per edge: every symbol the trees route over an
    # edge rides in a single per-edge vector (trees share the phase as one
    # synchronous round, so per-link bit totals — and hence the measured and
    # analytical clocks — are identical to per-tree sends).  Which tree each
    # vector entry belongs to is public knowledge: the packing is a
    # deterministic function of the instance graph.
    edge_vectors: Dict[Tuple[NodeId, NodeId], List[int]] = {}
    for tree_index, tree in enumerate(trees):
        for parent, child in tree.edges():
            edge_vectors.setdefault((parent, child), []).append(
                sent_symbols[(tree_index, parent, child)]
            )
    for (parent, child), vector in sorted(edge_vectors.items()):
        network.send_vector(
            parent, child, vector, symbol_bits, phase, kind="phase1_symbols"
        )

    values = {
        node: symbols_to_bits(per_node_symbols[node], symbol_bits) & ((1 << total_bits) - 1)
        for node in instance_graph.nodes()
    }
    values[source] = input_bits
    return Phase1Transcript(
        values=values,
        symbol_bits=symbol_bits,
        trees=tuple(trees),
        sent_symbols=sent_symbols,
        received_symbols=received_symbols,
    )


def expected_forward_symbols(
    transcript: Phase1Transcript, node: NodeId
) -> Dict[Tuple[int, NodeId, NodeId], int]:
    """What an honest ``node`` should have sent given what it received (for DC3).

    For each tree, an honest relay forwards to each child exactly the symbol it
    received from its parent; an honest source sends the symbols derived from
    its (broadcast) input.
    """
    expected: Dict[Tuple[int, NodeId, NodeId], int] = {}
    for tree_index, tree in enumerate(transcript.trees):
        if node == tree.root:
            continue
        if node not in tree.parents:
            continue
        received = transcript.received_symbols.get((tree_index, node), 0)
        for child in tree.children_of(node):
            expected[(tree_index, node, child)] = received
    return expected
