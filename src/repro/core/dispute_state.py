"""Accumulated dispute / fault knowledge and the instance-graph evolution ``G_k``.

Dispute control (Phase 3) produces two kinds of facts:

* a node pair ``{a, b}`` is *in dispute* — their claims about a message
  exchanged between them contradict each other, so at least one of the two is
  faulty (and fault-free pairs are never found in dispute);
* a node is *identified as faulty* — its claims are inconsistent with the
  deterministic algorithm, or every set of at most ``f`` nodes that explains
  all disputes contains it (step DC4), or it is in dispute with more than
  ``f`` distinct nodes.

All fault-free nodes learn these facts through Byzantine broadcast, so they
maintain identical copies of this state and derive identical instance graphs:
``G_{k+1}`` is ``G`` minus the identified-faulty nodes, minus every link
between a disputed pair.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.exceptions import ProtocolError
from repro.graph.network_graph import NetworkGraph
from repro.types import NodeId, NodePair, node_pair


class DisputeState:
    """Mutable record of disputes and identified-faulty nodes across instances."""

    def __init__(self, max_faults: int) -> None:
        if max_faults < 0:
            raise ProtocolError(f"max_faults must be non-negative, got {max_faults}")
        self.max_faults = max_faults
        self._disputes: Set[NodePair] = set()
        self._known_faulty: Set[NodeId] = set()
        # Last instance_graph derivation, as (base graph signature, pruned
        # graph signature, disputes applied, derived graph) — the anchor for
        # incremental Gomory-Hu repair when only new disputes were added.
        self._last_derivation: Tuple[object, object, FrozenSet[NodePair], NetworkGraph] | None = None

    # -------------------------------------------------------------- recording

    def add_dispute(self, a: NodeId, b: NodeId) -> None:
        """Record that nodes ``a`` and ``b`` were found in dispute."""
        self._disputes.add(node_pair(a, b))

    def add_disputes(self, pairs: Iterable[NodePair]) -> None:
        """Record a batch of disputed pairs."""
        for pair in pairs:
            pair = frozenset(pair)
            if len(pair) != 2:
                raise ProtocolError(f"a dispute involves exactly two nodes, got {set(pair)}")
            self._disputes.add(pair)

    def mark_faulty(self, node: NodeId) -> None:
        """Record that ``node`` has been identified as faulty (step DC3)."""
        self._known_faulty.add(node)

    # --------------------------------------------------------------- knowledge

    def disputes(self) -> FrozenSet[NodePair]:
        """All disputed pairs recorded so far."""
        return frozenset(self._disputes)

    def dispute_count(self) -> int:
        """Number of distinct disputed pairs."""
        return len(self._disputes)

    def is_disputed(self, a: NodeId, b: NodeId) -> bool:
        """Whether the pair ``{a, b}`` has been found in dispute."""
        return node_pair(a, b) in self._disputes

    def dispute_partners(self, node: NodeId) -> Set[NodeId]:
        """Nodes that ``node`` has been found in dispute with."""
        partners: Set[NodeId] = set()
        for pair in self._disputes:
            if node in pair:
                (other,) = pair - {node}
                partners.add(other)
        return partners

    def explaining_sets(self, nodes: Iterable[NodeId]) -> List[FrozenSet[NodeId]]:
        """All sets of at most ``f`` nodes (from ``nodes``) covering every disputed pair.

        A set ``F`` *explains* the disputes if every disputed pair has at least
        one endpoint in ``F``; the adversary's actual faulty set is always one
        of them, so the intersection of all explaining sets contains only
        certainly-faulty nodes (step DC4).
        """
        universe = sorted(set(nodes))
        relevant = [pair for pair in self._disputes if pair <= set(universe)]
        explaining: List[FrozenSet[NodeId]] = []
        for size in range(0, self.max_faults + 1):
            for candidate in combinations(universe, size):
                candidate_set = frozenset(candidate)
                if all(pair & candidate_set for pair in relevant):
                    explaining.append(candidate_set)
        return explaining

    def implied_faulty(self, nodes: Iterable[NodeId]) -> Set[NodeId]:
        """Nodes that are certainly faulty given the recorded evidence.

        The result is the union of

        * nodes directly identified as faulty (DC3),
        * nodes in dispute with more than ``f`` distinct other nodes (a
          fault-free node can only be in dispute with faulty ones, of which
          there are at most ``f``),
        * the intersection of all explaining sets (DC4).
        """
        universe = sorted(set(nodes))
        certainly_faulty: Set[NodeId] = set(self._known_faulty) & set(universe)
        for node in universe:
            if len(self.dispute_partners(node) & set(universe)) > self.max_faults:
                certainly_faulty.add(node)
        explaining = self.explaining_sets(universe)
        if explaining:
            intersection: Set[NodeId] = set(explaining[0])
            for candidate in explaining[1:]:
                intersection &= candidate
            certainly_faulty |= intersection
        return certainly_faulty

    # ------------------------------------------------------------- derivation

    def instance_graph(self, graph: NetworkGraph) -> NetworkGraph:
        """Derive the instance graph ``G_k`` from the original network ``G``.

        Identified-faulty nodes (and their links) are removed, then every link
        between a disputed pair is removed.

        When this state previously derived ``G_k`` from the same base graph
        and has since only *gained* disputes (the common dispute-control
        step: no new faulty identifications), the min-cut analysis of
        ``G_{k+1}`` is seeded incrementally: the cached Gomory-Hu tree of the
        previous instance graph is repaired pair-by-pair instead of letting
        ``gamma_{k+1}`` re-solve ``n - 1`` flows from scratch.  A failed
        precondition silently skips the seeding — derivation itself is always
        the plain remove-nodes / remove-links construction.
        """
        from repro.graph.flow_cache import graph_signature

        faulty = self.implied_faulty(graph.nodes())
        pruned = graph.remove_nodes(faulty)
        result = pruned.remove_links_between(self._disputes)
        disputes = frozenset(self._disputes)
        base_signature = graph_signature(graph)
        pruned_signature = graph_signature(pruned)
        previous = self._last_derivation
        if previous is not None:
            prev_base, prev_pruned, prev_disputes, prev_result = previous
            delta = disputes - prev_disputes
            if (
                delta
                and prev_base == base_signature
                and prev_pruned == pruned_signature
                and prev_disputes <= disputes
            ):
                from repro.graph.gomory_hu import derive_trees_after_pair_removals

                derive_trees_after_pair_removals(prev_result, delta, result)
        self._last_derivation = (base_signature, pruned_signature, disputes, result)
        return result

    def snapshot(self) -> Tuple[FrozenSet[NodePair], FrozenSet[NodeId]]:
        """An immutable snapshot ``(disputes, known_faulty)`` for equality checks in tests."""
        return frozenset(self._disputes), frozenset(self._known_faulty)

    # ----------------------------------------------------------- serialisation

    def to_jsonable(self) -> Dict[str, object]:
        """A JSON-safe rendering of the accumulated dispute knowledge.

        The layout is canonical (pairs sorted within and across, faulty ids
        sorted) so ``json.dumps(..., sort_keys=True)`` of the result is a pure
        function of the knowledge itself — the property the session service's
        write-ahead snapshots rely on.  The cached ``instance_graph``
        derivation anchor is deliberately not serialised: it is a pure
        performance memo that the restored state rebuilds on first use.
        """
        return {
            "max_faults": self.max_faults,
            "disputes": sorted(sorted(pair) for pair in self._disputes),
            "known_faulty": sorted(self._known_faulty),
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "DisputeState":
        """Rebuild a state previously rendered by :meth:`to_jsonable`.

        Raises:
            ProtocolError: if the payload is malformed (a dispute without
                exactly two distinct nodes, or a negative ``max_faults``).
        """
        state = cls(int(data["max_faults"]))
        state.add_disputes(
            frozenset(pair) for pair in data.get("disputes", ())
        )
        for node in data.get("known_faulty", ()):
            state.mark_faulty(node)
        return state

    def copy(self) -> "DisputeState":
        """An independent copy of this state."""
        clone = DisputeState(self.max_faults)
        clone._disputes = set(self._disputes)
        clone._known_faulty = set(self._known_faulty)
        clone._last_derivation = self._last_derivation
        return clone

    def __repr__(self) -> str:
        return (
            f"DisputeState(disputes={sorted(tuple(sorted(p)) for p in self._disputes)}, "
            f"known_faulty={sorted(self._known_faulty)})"
        )
