"""One NAB instance: the three phases glued together with time accounting.

The orchestration mirrors Section 2 of the paper, including its two special
cases:

* if the source is no longer in ``G_k`` (it has been identified as faulty),
  all fault-free nodes adopt a default output and the instance costs nothing;
* if the source is in ``G_k`` but at least ``f`` other nodes have been
  excluded, every remaining node is fault-free and Phase 1 alone suffices.

The per-phase costs follow Appendix D: Phase 1 costs ``~L / gamma_k``, the
Equality Check ``~L / rho_k``, the 1-bit flag broadcasts a (measured)
polynomial-in-``n`` amount independent of ``L``, and dispute control a large
``L``-dependent amount that is incurred at most ``f (f + 1)`` times across a
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Sequence, Tuple

from repro.coding.coding_matrix import generate_coding_scheme
from repro.core.dispute_state import DisputeState
from repro.core.parameters import InstanceParameters, compute_instance_parameters
from repro.core.phase1_broadcast import run_phase1
from repro.core.phase2_equality import run_phase2
from repro.core.phase3_dispute import DEFAULT_OUTPUT, run_phase3
from repro.exceptions import ProtocolError
from repro.gf.symbols import symbol_size_for
from repro.graph.network_graph import NetworkGraph
from repro.transport.faults import FaultModel
from repro.transport.network import NetworkFactory, SynchronousNetwork
from repro.types import NodeId, PhaseTiming, accumulate_link_bits


@dataclass(frozen=True)
class InstanceResult:
    """Everything one NAB instance produced.

    Attributes:
        instance: The instance index ``k`` (0-based).
        outputs: Output value (integer of ``L`` bits) of every fault-free node.
        elapsed: Total elapsed time of the instance in time units.
        bits_sent: Total bits sent on all links.
        phase_timings: Per-phase breakdown.
        parameters: ``gamma_k`` / ``U_k`` / ``rho_k`` used (``None`` for the
            default-output special case).
        dispute_control_ran: Whether Phase 3 executed.
        new_disputes: Disputed pairs discovered by this instance.
        newly_identified_faulty: Faulty nodes identified by this instance.
        mismatch_announced: Whether any node announced MISMATCH in step 2.2.
        link_bits: Bits sent per directed link over the whole instance.
        phase1_depth: Maximum depth over the packed Phase 1 arborescences (the
            number of store-and-forward hops the broadcast needs under
            propagation delay); ``None`` when Phase 1 did not run.
    """

    instance: int
    outputs: Dict[NodeId, int]
    elapsed: Fraction
    bits_sent: int
    phase_timings: Tuple[PhaseTiming, ...]
    parameters: Optional[InstanceParameters]
    dispute_control_ran: bool
    new_disputes: Tuple[frozenset, ...]
    newly_identified_faulty: Tuple[NodeId, ...]
    mismatch_announced: bool
    link_bits: Dict[tuple, int] = field(default_factory=dict)
    phase1_depth: Optional[int] = None

    def agreed_value(self) -> int:
        """The common output of the fault-free nodes.

        Raises:
            ProtocolError: if they do not agree (which would indicate a bug —
                NAB guarantees agreement).
        """
        values = set(self.outputs.values())
        if len(values) != 1:
            raise ProtocolError(f"fault-free nodes disagree: {sorted(values)}")
        return next(iter(values))

    def to_jsonable(self) -> Dict[str, object]:
        """A JSON-safe rendering that :func:`instance_result_from_jsonable` inverts.

        Every mapping key is a string and every exact rational a ``"p/q"``
        string, matching the :meth:`repro.types.RunRecord.to_jsonable`
        conventions, so session snapshots embedding these rows serialise
        bit-for-bit reproducibly under ``json.dumps(..., sort_keys=True)``.
        """
        return {
            "instance": self.instance,
            "outputs": {str(node): value for node, value in self.outputs.items()},
            "elapsed": str(self.elapsed),
            "bits_sent": self.bits_sent,
            "phase_timings": [
                {
                    "name": timing.name,
                    "time_units": str(timing.time_units),
                    "bits_sent": timing.bits_sent,
                }
                for timing in self.phase_timings
            ],
            "parameters": None
            if self.parameters is None
            else {
                "gamma": self.parameters.gamma,
                "omega": [list(nodes) for nodes in self.parameters.omega],
                "uk": self.parameters.uk,
                "rho": self.parameters.rho,
            },
            "dispute_control_ran": self.dispute_control_ran,
            "new_disputes": [sorted(pair) for pair in self.new_disputes],
            "newly_identified_faulty": list(self.newly_identified_faulty),
            "mismatch_announced": self.mismatch_announced,
            "link_bits": {
                f"{tail}->{head}": bits
                for (tail, head), bits in sorted(self.link_bits.items())
            },
            "phase1_depth": self.phase1_depth,
        }


def instance_result_from_jsonable(data: Dict[str, object]) -> InstanceResult:
    """Rebuild an :class:`InstanceResult` rendered by :meth:`InstanceResult.to_jsonable`.

    The round trip is exact: node ids come back as integers, times as
    :class:`~fractions.Fraction`, disputes as frozensets — so a session
    restored from a write-ahead snapshot aggregates its completed instances
    into a :class:`repro.types.RunRecord` byte-identical to an uninterrupted
    run's.
    """
    parameters = data.get("parameters")
    return InstanceResult(
        instance=int(data["instance"]),
        outputs={int(node): value for node, value in data["outputs"].items()},
        elapsed=Fraction(data["elapsed"]),
        bits_sent=int(data["bits_sent"]),
        phase_timings=tuple(
            PhaseTiming(
                name=timing["name"],
                time_units=Fraction(timing["time_units"]),
                bits_sent=int(timing["bits_sent"]),
            )
            for timing in data.get("phase_timings", ())
        ),
        parameters=None
        if parameters is None
        else InstanceParameters(
            gamma=int(parameters["gamma"]),
            omega=tuple(tuple(nodes) for nodes in parameters["omega"]),
            uk=int(parameters["uk"]),
            rho=int(parameters["rho"]),
        ),
        dispute_control_ran=bool(data["dispute_control_ran"]),
        new_disputes=tuple(frozenset(pair) for pair in data.get("new_disputes", ())),
        newly_identified_faulty=tuple(data.get("newly_identified_faulty", ())),
        mismatch_announced=bool(data["mismatch_announced"]),
        link_bits={
            tuple(int(part) for part in edge.split("->")): bits
            for edge, bits in data.get("link_bits", {}).items()
        },
        phase1_depth=data.get("phase1_depth"),
    )


def summarize_instances(
    results: "Sequence[InstanceResult]", inputs: "Sequence[bytes]"
) -> Tuple[
    Tuple[Dict[NodeId, bytes], ...],
    Dict[tuple, int],
    list,
    list,
]:
    """Aggregate per-instance results into the shared ``RunRecord`` ingredients.

    The single definition used by both the sequential (``NABRunResult``) and
    pipelined (``PipelinedNABResult``) record builders, so the two execution
    paths can never disagree on output canonicalisation or dispute
    aggregation.

    Returns:
        ``(outputs, link_totals, disputes, identified)`` where ``outputs``
        renders each instance's integer outputs as byte strings of the
        instance's payload length — the canonical form is length-preserving
        (an output of 7 on a 2-byte payload is ``b"\\x00\\x07"``, distinct
        from a 1-byte payload's ``b"\\x07"``).
    """
    link_totals: Dict[tuple, int] = {}
    disputes: list = []
    identified: list = []
    for result in results:
        accumulate_link_bits(link_totals, result.link_bits)
        disputes.extend(sorted(pair) for pair in result.new_disputes)
        identified.extend(result.newly_identified_faulty)
    outputs = tuple(
        {
            node: value.to_bytes(len(payload), "big")
            for node, value in result.outputs.items()
        }
        for payload, result in zip(inputs, results)
    )
    return outputs, link_totals, disputes, identified


class NABInstance:
    """Executor for a single instance ``k`` of NAB."""

    def __init__(
        self,
        graph: NetworkGraph,
        source: NodeId,
        max_faults: int,
        fault_model: FaultModel,
        dispute_state: DisputeState,
        instance: int,
        coding_seed: int = 0,
        network_factory: NetworkFactory | None = None,
        recorder=None,
    ) -> None:
        self.graph = graph
        self.source = source
        self.max_faults = max_faults
        self.fault_model = fault_model
        self.dispute_state = dispute_state
        self.instance = instance
        self.coding_seed = coding_seed
        self.network_factory = (
            network_factory if network_factory is not None else SynchronousNetwork
        )
        #: Optional forensic recorder (``repro.analysis.forensics``): when set,
        #: every instance that reaches Phase 2 deposits its ledger evidence —
        #: transcripts, flags, agreed claims — via ``recorder.record(...)``.
        #: ``None`` (the default) changes nothing.
        self.recorder = recorder

    # ----------------------------------------------------------------- running

    def run(self, input_bits: int, total_bits: int) -> InstanceResult:
        """Run the instance for the given ``L``-bit input (as an integer)."""
        if total_bits < 1:
            raise ProtocolError(f"total_bits must be >= 1, got {total_bits}")
        if input_bits < 0 or input_bits >= (1 << total_bits):
            raise ProtocolError(f"input does not fit in {total_bits} bits")
        network = self.network_factory(self.graph, self.fault_model)
        instance_graph = self.dispute_state.instance_graph(self.graph)
        all_nodes = self.graph.nodes()
        fault_free = self.fault_model.fault_free(all_nodes)

        # The adversary knows everything public: topology, instance graph,
        # source, and the agreed dispute state (a private copy — mutating it
        # cannot influence the protocol).  Adaptive strategies use this to
        # retarget away from already-disputed edges.
        self.fault_model.strategy.observe_instance(
            self.instance,
            self.graph,
            instance_graph,
            self.source,
            self.max_faults,
            self.dispute_state.copy(),
        )

        # Special case 1: the source has been identified as faulty.
        if not instance_graph.has_node(self.source):
            outputs = {node: DEFAULT_OUTPUT for node in fault_free}
            return self._result(network, outputs, None, False, (), (), False)

        participants = instance_graph.nodes()
        excluded = len(all_nodes) - len(participants)
        residual_faults = max(0, self.max_faults - excluded)

        parameters = compute_instance_parameters(
            instance_graph, self.source, len(all_nodes), self.max_faults, self.dispute_state
        )
        scheme = generate_coding_scheme(
            instance_graph,
            parameters.rho,
            symbol_size_for(total_bits, parameters.rho),
            seed=self.coding_seed,
            instance=self.instance,
        )

        phase1 = run_phase1(
            network,
            instance_graph,
            self.source,
            input_bits,
            total_bits,
            parameters.gamma,
            instance=self.instance,
        )
        phase1_depth = max((tree.depth() for tree in phase1.trees), default=1)

        # Special case 2: at least f nodes excluded -> everyone left is
        # fault-free and Phase 1 alone is reliable.
        if excluded >= self.max_faults:
            outputs = {
                node: phase1.values[node]
                for node in fault_free
                if node in phase1.values
            }
            return self._result(
                network, outputs, parameters, False, (), (), False, phase1_depth
            )

        phase2 = run_phase2(
            network,
            instance_graph,
            phase1.values,
            total_bits,
            scheme,
            participants,
            residual_faults,
            self.max_faults,
            instance=self.instance,
        )

        if not phase2.mismatch_announced:
            self._record_evidence(participants, phase1, phase2, None)
            outputs = {
                node: phase1.values[node]
                for node in fault_free
                if node in phase1.values
            }
            return self._result(
                network, outputs, parameters, False, (), (), False, phase1_depth
            )

        phase3 = run_phase3(
            network,
            instance_graph,
            self.source,
            input_bits,
            total_bits,
            phase1,
            phase2.check,
            phase2.announced_flags,
            scheme,
            participants,
            residual_faults,
            self.max_faults,
            instance=self.instance,
        )
        self._record_evidence(participants, phase1, phase2, phase3)
        # Update the shared dispute state (all fault-free nodes do this
        # identically because the claims table is agreed via Byzantine
        # broadcast).
        self.dispute_state.add_disputes(phase3.new_disputes)
        for node in phase3.identified_faulty:
            self.dispute_state.mark_faulty(node)
        outputs = {node: phase3.output_bits for node in fault_free}
        return self._result(
            network,
            outputs,
            parameters,
            True,
            phase3.new_disputes,
            phase3.identified_faulty,
            True,
            phase1_depth,
        )

    # ----------------------------------------------------------------- helpers

    def _record_evidence(self, participants, phase1, phase2, phase3) -> None:
        """Deposit this instance's public ledger with the forensic recorder.

        Everything recorded is information every fault-free node holds after
        the instance completes: the transport ledger (delivered Phase 1
        symbols and equality-check vectors), the agreed flag vector, and —
        when dispute control ran — the agreed claims table with its verdicts.
        The set of actually-faulty nodes is deliberately *not* included; the
        forensic pass must reconstruct culpability from public evidence only.
        """
        if self.recorder is None:
            return
        self.recorder.record(
            {
                "instance": self.instance,
                "source": self.source,
                "participants": tuple(sorted(participants)),
                "max_faults": self.max_faults,
                "tree_parents": tuple(dict(tree.parents) for tree in phase1.trees),
                "phase1_sent": dict(phase1.sent_symbols),
                "phase1_received": dict(phase1.received_symbols),
                "equality_sent": {
                    edge: tuple(vector)
                    for edge, vector in phase2.check.sent_vectors.items()
                },
                "true_flags": dict(phase2.check.flags),
                "announced_flags": dict(phase2.announced_flags),
                "claims": None if phase3 is None else phase3.claims,
                "new_disputes": () if phase3 is None else phase3.new_disputes,
                "identified": () if phase3 is None else phase3.identified_faulty,
            }
        )

    def _result(
        self,
        network: SynchronousNetwork,
        outputs: Dict[NodeId, int],
        parameters: Optional[InstanceParameters],
        dispute_control_ran: bool,
        new_disputes,
        identified_faulty,
        mismatch_announced: bool,
        phase1_depth: Optional[int] = None,
    ) -> InstanceResult:
        return InstanceResult(
            instance=self.instance,
            outputs=outputs,
            elapsed=network.elapsed_time(),
            bits_sent=network.total_bits(),
            phase_timings=network.accountant.phase_timings(),
            parameters=parameters,
            dispute_control_ran=dispute_control_ran,
            new_disputes=tuple(new_disputes),
            newly_identified_faulty=tuple(identified_faulty),
            mismatch_announced=mismatch_announced,
            link_bits=network.accountant.total_link_bits(),
            phase1_depth=phase1_depth,
        )
