"""Per-instance parameters: ``gamma_k``, ``Omega_k``, ``U_k`` and ``rho_k``.

For the ``k``-th NAB instance running on graph ``G_k``:

* ``gamma_k = min_j MINCUT(G_k, 1, j)`` sets the Phase 1 broadcast rate;
* ``Omega_k`` is the family of dispute-free ``(n - f)``-node subgraphs;
* ``U_k`` is the smallest pairwise undirected min-cut over ``Omega_k``;
* ``rho_k = floor(U_k / 2)`` sets the Equality Check rate (Phase 2).

All fault-free nodes compute these identically because they share the same
dispute state.

The full tuple is memoised on the canonical graph signature plus the dispute
set: long-lived processes (the session service, engine sweeps) run thousands
of instances over a handful of distinct ``(G_k, disputes)`` combinations, and
the Omega/U_k computation is pure, so repeat instances reduce to a dictionary
lookup.  The cache is bounded (LRU) and holds only immutable value objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.coding.omega import compute_rho, compute_uk, dispute_free_subgraphs
from repro.exceptions import ProtocolError
from repro.graph.flow_cache import MinCutCache, graph_signature
from repro.graph.mincut import broadcast_mincut
from repro.graph.network_graph import NetworkGraph
from repro.core.dispute_state import DisputeState
from repro.types import NodeId

#: Bound on memoised parameter tuples; each entry is a few hundred bytes.
PARAMETER_CACHE_ENTRIES = 4096

_parameter_cache = MinCutCache(max_entries=PARAMETER_CACHE_ENTRIES)


def instance_parameter_cache_stats() -> Dict[str, object]:
    """Hit/miss statistics of the instance-parameter memo."""
    return _parameter_cache.stats()


def clear_instance_parameter_cache() -> None:
    """Drop all memoised instance parameters (tests, workload switches)."""
    _parameter_cache.clear()


@dataclass(frozen=True)
class InstanceParameters:
    """The quantities NAB needs before running one instance.

    Attributes:
        gamma: ``gamma_k``, the Phase 1 broadcast min-cut from the source.
        omega: The node sets of the subgraphs in ``Omega_k``.
        uk: ``U_k``.
        rho: ``rho_k = floor(U_k / 2)``.
    """

    gamma: int
    omega: Tuple[Tuple[NodeId, ...], ...]
    uk: int
    rho: int


def compute_instance_parameters(
    instance_graph: NetworkGraph,
    source: NodeId,
    total_nodes: int,
    max_faults: int,
    dispute_state: DisputeState,
) -> InstanceParameters:
    """Compute ``(gamma_k, Omega_k, U_k, rho_k)`` for an instance graph.

    Args:
        instance_graph: ``G_k``.
        source: The broadcasting node (must be present in ``G_k``).
        total_nodes: ``n``, the number of nodes of the *original* network.
        max_faults: ``f``.
        dispute_state: Accumulated disputes (only pairs inside ``G_k`` matter).

    Raises:
        ProtocolError: if the source is not in the instance graph — the caller
            is expected to have handled that special case (all fault-free
            nodes then agree on a default output).
    """
    if not instance_graph.has_node(source):
        raise ProtocolError(
            f"source {source} is not in the instance graph; agree on a default instead"
        )
    key = (
        graph_signature(instance_graph),
        source,
        total_nodes,
        max_faults,
        dispute_state.disputes(),
    )
    cached = _parameter_cache.lookup(key)
    if cached is not None:
        return cached
    gamma = broadcast_mincut(instance_graph, source)
    subgraph_size = total_nodes - max_faults
    omega = tuple(
        dispute_free_subgraphs(instance_graph, subgraph_size, dispute_state.disputes())
    )
    uk = compute_uk(instance_graph, omega)
    rho = compute_rho(uk)
    params = InstanceParameters(gamma=gamma, omega=omega, uk=uk, rho=rho)
    _parameter_cache.store(key, params)
    return params
