"""NAB — the Network-Aware Byzantine broadcast algorithm (the paper's contribution).

Each NAB instance broadcasts one ``L``-bit value from the source (node 1 by
convention) to every other node in three phases:

1. **Unreliable broadcast** (:mod:`repro.core.phase1_broadcast`): the value is
   split into ``gamma_k`` symbols shipped down ``gamma_k`` capacity-disjoint
   spanning arborescences of the instance graph ``G_k`` — time
   ``L / gamma_k``, no fault tolerance.
2. **Failure detection** (:mod:`repro.core.phase2_equality`): the Equality
   Check of Section 3 (time ``L / rho_k``) followed by classical Byzantine
   broadcast of every node's 1-bit MISMATCH flag.
3. **Dispute control** (:mod:`repro.core.phase3_dispute`): run only when some
   node announced MISMATCH; every node broadcasts its full instance
   transcript, which yields a correct output for the instance and identifies
   a new faulty node or a new node pair in dispute.  The accumulated
   dispute/fault knowledge (:mod:`repro.core.dispute_state`) shrinks the graph
   used by later instances.

:class:`repro.core.nab.NetworkAwareBroadcast` is the public entry point that
runs a sequence of instances and reports per-instance results, timings and
achieved throughput; :meth:`~repro.core.nab.NetworkAwareBroadcast.run_pipelined`
overlaps the instances per the Figure 3 pipeline on the discrete-event kernel
(:mod:`repro.core.pipeline`).
"""

from repro.core.dispute_state import DisputeState
from repro.core.instance import InstanceResult, NABInstance
from repro.core.nab import NABRunResult, NetworkAwareBroadcast
from repro.core.parameters import InstanceParameters, compute_instance_parameters
from repro.core.pipeline import PipelinedNABResult, StageTiming, run_pipelined

__all__ = [
    "DisputeState",
    "InstanceParameters",
    "compute_instance_parameters",
    "NABInstance",
    "InstanceResult",
    "NetworkAwareBroadcast",
    "NABRunResult",
    "PipelinedNABResult",
    "StageTiming",
    "run_pipelined",
]
