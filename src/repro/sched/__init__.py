"""Discrete-event scheduling: the exact-time kernel the runtime stack sits on.

* :mod:`repro.sched.kernel` — :class:`EventQueue` (deterministic timed
  callbacks with a :class:`fractions.Fraction` clock) and
  :func:`simulate_tasks` (dependency-driven task graphs, the shape of the
  paper's Figure 3 pipeline).
* :mod:`repro.sched.links` — :class:`LinkModel` propagation-delay models
  (uniform latency, per-link heterogeneity, deterministic jitter) plus the
  name-keyed registry experiment specs reference.
* :mod:`repro.sched.faults` — :class:`LinkFaultPlan` seeded link-fault
  schedules (deterministic drop/duplicate/corrupt per wire attempt) with the
  same registry pattern; the ARQ transport in
  :mod:`repro.transport.reliable` consumes them.

The transport built on this kernel lives in
:mod:`repro.transport.scheduled` (:class:`ScheduledNetwork`) and the
pipelined NAB executor in :mod:`repro.core.pipeline`.
"""

from repro.sched.faults import (
    EdgeFaultRates,
    LinkFaultPlan,
    fault_plan,
    named_fault_plans,
    register_fault_plan,
)
from repro.sched.kernel import (
    EventQueue,
    Task,
    TaskTimeline,
    TaskTiming,
    simulate_tasks,
)
from repro.sched.links import (
    LinkModel,
    link_model,
    named_link_models,
    register_link_model,
)

__all__ = [
    "EventQueue",
    "Task",
    "TaskTiming",
    "TaskTimeline",
    "simulate_tasks",
    "LinkModel",
    "link_model",
    "named_link_models",
    "register_link_model",
    "EdgeFaultRates",
    "LinkFaultPlan",
    "fault_plan",
    "named_fault_plans",
    "register_fault_plan",
]
