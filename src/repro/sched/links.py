"""Per-link delivery models for the scheduled transport.

The paper's base model delivers messages instantaneously once their bits have
drained through the link (zero propagation delay); Appendix D motivates the
pipelined execution precisely because real links *do* have propagation
latency.  A :class:`LinkModel` captures that axis: every directed link is a
FIFO whose finite capacity drains bits over time (that part is fixed — it is
the paper's capacity model), plus an optional per-message propagation delay
made of

* a uniform base ``latency`` applied to every link,
* per-link overrides (``per_link``) for latency-heterogeneous networks, and
* an optional deterministic ``jitter``: a seeded hash of the link and the
  message sequence number picks a rational in ``[0, jitter]``, so runs are
  bit-for-bit reproducible while still exercising non-constant delays.

Named models are registered so experiment specs can reference them
declaratively (``link_models=("instant", "hetero-slow-tail")``), exactly like
topologies and adversary strategies.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Mapping

from repro.exceptions import ConfigurationError, SchedulerError
from repro.types import Edge

#: Granularity of the deterministic jitter lattice: jitter values are integer
#: multiples of ``jitter / JITTER_STEPS`` so they stay small exact fractions.
JITTER_STEPS = 64


@dataclass(frozen=True)
class LinkModel:
    """Propagation-delay model applied on top of the capacity drain.

    Attributes:
        name: Registry name (purely informational on ad-hoc instances).
        latency: Base propagation delay added to every delivery.
        per_link: Per-directed-link latency overrides (replacing ``latency``).
        jitter: Upper bound of the deterministic per-message jitter interval
            (0 disables jitter).
        seed: Seed of the jitter hash.
    """

    name: str = "instant"
    latency: Fraction = Fraction(0)
    per_link: Mapping[Edge, Fraction] = field(default_factory=dict)
    jitter: Fraction = Fraction(0)
    seed: int = 0

    def __post_init__(self) -> None:
        if Fraction(self.latency) < 0 or Fraction(self.jitter) < 0:
            raise SchedulerError("latency and jitter must be non-negative")
        for edge, value in self.per_link.items():
            if Fraction(value) < 0:
                raise SchedulerError(f"negative latency for link {edge}")

    @property
    def is_instant(self) -> bool:
        """Whether this model adds no propagation delay at all."""
        return (
            Fraction(self.latency) == 0
            and Fraction(self.jitter) == 0
            and all(Fraction(value) == 0 for value in self.per_link.values())
        )

    def link_latency(self, edge: Edge) -> Fraction:
        """Base propagation latency of one directed link."""
        if edge in self.per_link:
            return Fraction(self.per_link[edge])
        return Fraction(self.latency)

    def delay(self, edge: Edge, sequence: int) -> Fraction:
        """Total propagation delay of one message (base latency plus jitter).

        The jitter of message ``sequence`` on ``edge`` is a deterministic
        function of ``(seed, edge, sequence)``: a SHA-256 hash picks one of
        :data:`JITTER_STEPS` + 1 lattice points in ``[0, jitter]``.
        """
        base = self.link_latency(edge)
        jitter = Fraction(self.jitter)
        if jitter == 0:
            return base
        digest = hashlib.sha256(
            f"{self.seed}|{edge[0]}->{edge[1]}|{sequence}".encode()
        ).digest()
        step = int.from_bytes(digest[:4], "big") % (JITTER_STEPS + 1)
        return base + jitter * Fraction(step, JITTER_STEPS)


_LINK_MODEL_FACTORIES: Dict[str, Callable[[], LinkModel]] = {
    "instant": lambda: LinkModel(name="instant"),
    "unit-latency": lambda: LinkModel(name="unit-latency", latency=Fraction(1)),
    "lan-wan": lambda: LinkModel(
        # Cheap local links, one expensive long-haul hop per message: every
        # link touching node 7 is slow, the rest are near-instant.  Only
        # meaningful on topologies that actually contain node 7 (the 7-node
        # families); elsewhere it degenerates to the uniform 1/8 latency.
        name="lan-wan",
        latency=Fraction(1, 8),
        per_link={
            (tail, head): Fraction(4)
            for tail in range(1, 8)
            for head in range(1, 8)
            if tail != head and 7 in (tail, head)
        },
    ),
    "jitter-mild": lambda: LinkModel(
        name="jitter-mild", latency=Fraction(1, 4), jitter=Fraction(1, 2), seed=7
    ),
}


def named_link_models() -> List[str]:
    """All registered link-model names, sorted."""
    return sorted(_LINK_MODEL_FACTORIES)


def link_model(name: str) -> LinkModel:
    """Instantiate the named link model.

    Raises:
        ConfigurationError: if the name is unknown.
    """
    if name not in _LINK_MODEL_FACTORIES:
        raise ConfigurationError(
            f"unknown link model {name!r}; available: {', '.join(named_link_models())}"
        )
    return _LINK_MODEL_FACTORIES[name]()


def register_link_model(
    name: str, factory: Callable[[], LinkModel], replace: bool = False
) -> None:
    """Register a named link-model factory.

    Raises:
        ConfigurationError: if the name is taken and ``replace`` is not set.
    """
    if name in _LINK_MODEL_FACTORIES and not replace:
        raise ConfigurationError(f"link model {name!r} is already registered")
    _LINK_MODEL_FACTORIES[name] = factory
