"""The discrete-event simulation kernel: an exact-time event queue and a
dependency-driven task simulator.

Everything in :mod:`repro.sched` keeps time as :class:`fractions.Fraction`, the
same exact arithmetic the analytical layer (:mod:`repro.capacity`,
:class:`repro.transport.accounting.TimeAccountant`) uses, so a simulated clock
can be compared against an analytical schedule with ``==`` rather than with a
floating-point tolerance.  Determinism is part of the contract: events firing
at the same instant are processed in scheduling order (a monotone sequence
number breaks ties), so a simulation is a pure function of the scheduled
events.

Two entry points:

* :class:`EventQueue` — the raw kernel: schedule callbacks at absolute or
  relative times, advance the clock by processing events in order.
* :func:`simulate_tasks` — a task-graph simulator built on the queue: tasks
  with exact durations and explicit dependencies are started as soon as every
  dependency has finished, which is exactly the structure of the paper's
  Figure 3 pipeline (instance ``q`` at hop ``h`` waits for ``(q, h-1)`` and
  ``(q-1, h)``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.exceptions import SchedulerError


class EventQueue:
    """A deterministic priority queue of timed callbacks with an exact clock.

    The clock starts at ``start`` (0 by default) and only moves forward:
    events may be scheduled at any time ``>= now`` and are processed in
    ``(time, scheduling order)`` order.  Callbacks may schedule further events
    (at or after the current event's time).

    A non-zero ``start`` restores a clock mid-flight — the session service
    resumes a snapshotted run at the absolute time it stopped, and because the
    kernel is a pure function of the scheduled events, the resumed timeline
    equals the uninterrupted one shifted by nothing at all.

    Raises:
        SchedulerError: if ``start`` is negative.
    """

    def __init__(self, start: Fraction | int = 0) -> None:
        start = Fraction(start)
        if start < 0:
            raise SchedulerError(f"the clock cannot start at negative time {start}")
        self._heap: List[Tuple[Fraction, int, Optional[Callable[[], None]]]] = []
        self._sequence = itertools.count()
        self._now = start

    @property
    def now(self) -> Fraction:
        """The current simulation time (exact)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: Fraction | int, action: Callable[[], None] | None = None) -> None:
        """Schedule ``action`` (may be ``None`` for a pure clock marker) at ``time``.

        Raises:
            SchedulerError: if ``time`` is earlier than the current clock.
        """
        when = Fraction(time)
        if when < self._now:
            raise SchedulerError(
                f"cannot schedule an event at {when} before the current time {self._now}"
            )
        heapq.heappush(self._heap, (when, next(self._sequence), action))

    def schedule_after(
        self, delay: Fraction | int, action: Callable[[], None] | None = None
    ) -> None:
        """Schedule ``action`` ``delay`` time units after the current clock.

        Raises:
            SchedulerError: if ``delay`` is negative.
        """
        delay = Fraction(delay)
        if delay < 0:
            raise SchedulerError(f"delay must be non-negative, got {delay}")
        self.schedule(self._now + delay, action)

    def step(self) -> bool:
        """Process the next event (advancing the clock); ``False`` when empty."""
        if not self._heap:
            return False
        when, _, action = heapq.heappop(self._heap)
        self._now = when
        if action is not None:
            action()
        return True

    def run(self) -> Fraction:
        """Process every pending event and return the final clock value."""
        while self.step():
            pass
        return self._now


@dataclass(frozen=True)
class Task:
    """One unit of simulated work with an exact duration and dependencies.

    Attributes:
        name: Unique hashable task identifier.
        duration: Exact time the task occupies once started (``>= 0``).
        deps: Names of the tasks that must finish before this one starts.
    """

    name: Hashable
    duration: Fraction
    deps: Tuple[Hashable, ...] = ()


@dataclass(frozen=True)
class TaskTiming:
    """Start and end time of one simulated task."""

    name: Hashable
    start: Fraction
    end: Fraction


class TaskTimeline:
    """The result of simulating a task graph: per-task timings plus makespan."""

    def __init__(self, timings: Sequence[TaskTiming]) -> None:
        self._timings = {timing.name: timing for timing in timings}
        self._order = list(timings)

    def start(self, name: Hashable) -> Fraction:
        """When the named task started.

        Raises:
            SchedulerError: if the task is unknown.
        """
        return self._timing(name).start

    def end(self, name: Hashable) -> Fraction:
        """When the named task finished.

        Raises:
            SchedulerError: if the task is unknown.
        """
        return self._timing(name).end

    def _timing(self, name: Hashable) -> TaskTiming:
        if name not in self._timings:
            raise SchedulerError(f"unknown task {name!r}")
        return self._timings[name]

    @property
    def makespan(self) -> Fraction:
        """Completion time of the whole task graph (0 for an empty graph)."""
        if not self._order:
            return Fraction(0)
        return max(timing.end for timing in self._order)

    def timings(self) -> List[TaskTiming]:
        """Every task timing, in completion order (ties in start order)."""
        return list(self._order)

    def __len__(self) -> int:
        return len(self._order)


def simulate_tasks(tasks: Sequence[Task]) -> TaskTimeline:
    """Run a dependency graph of exact-duration tasks through the event queue.

    Every task starts the instant its last dependency finishes (tasks never
    queue for execution resources here — resource contention is expressed as
    explicit dependencies, e.g. "instance ``q`` cannot use the hop-``h`` links
    before instance ``q-1`` is done with them").

    Raises:
        SchedulerError: if task names collide, a dependency is unknown, a
            duration is negative, or the dependency graph has a cycle.
    """
    by_name: Dict[Hashable, Task] = {}
    for task in tasks:
        if task.name in by_name:
            raise SchedulerError(f"duplicate task name {task.name!r}")
        if Fraction(task.duration) < 0:
            raise SchedulerError(f"task {task.name!r} has negative duration")
        by_name[task.name] = task
    for task in tasks:
        for dep in task.deps:
            if dep not in by_name:
                raise SchedulerError(f"task {task.name!r} depends on unknown {dep!r}")

    queue = EventQueue()
    unfinished_deps = {task.name: len(set(task.deps)) for task in tasks}
    dependents: Dict[Hashable, List[Hashable]] = {task.name: [] for task in tasks}
    for task in tasks:
        for dep in set(task.deps):
            dependents[dep].append(task.name)
    started: Dict[Hashable, Fraction] = {}
    finished: List[TaskTiming] = []

    def _finish(name: Hashable) -> None:
        finished.append(TaskTiming(name=name, start=started[name], end=queue.now))
        for dependent in dependents[name]:
            unfinished_deps[dependent] -= 1
            if unfinished_deps[dependent] == 0:
                _start(dependent)

    def _start(name: Hashable) -> None:
        started[name] = queue.now
        queue.schedule_after(Fraction(by_name[name].duration), lambda: _finish(name))

    for task in tasks:
        if unfinished_deps[task.name] == 0:
            _start(task.name)
    queue.run()

    if len(finished) != len(tasks):
        stuck = sorted(repr(name) for name in by_name if name not in started)
        raise SchedulerError(
            f"task graph has a dependency cycle; never started: {', '.join(stuck)}"
        )
    return TaskTimeline(finished)
