"""Seeded link-fault plans: deterministic drop / duplicate / corrupt decisions.

The paper assumes reliable synchronous links; this module models the axis it
abstracts away.  A :class:`LinkFaultPlan` decides, for every wire attempt on a
directed link, whether the attempt is delivered intact, lost, duplicated or
corrupted in flight.  Decisions follow the PR 3 jitter idiom: a SHA-256 hash
of ``(seed, edge, per-edge attempt ordinal)`` picks a lattice point in
``[0, 1)`` that is compared against the plan's rates, so faulty runs are
bit-for-bit reproducible no matter which worker process executes them, while
still exercising genuinely scattered loss patterns.

The fault layer sits *below* the Byzantine layer: :mod:`repro.transport.faults`
models adversarial nodes, this module models an unreliable medium.  The ARQ
transport (:class:`repro.transport.reliable.ReliableNetwork`) turns these
per-attempt faults back into reliable delivery via timeout/retransmission, so
protocol semantics never observe them — only the clocks and bit ledgers do.

Named plans are registered so experiment specs can reference them
declaratively (``fault_plans=("none", "drop-10pct")``), exactly like
topologies, adversary strategies and link models.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Callable, Dict, List, Mapping

from repro.exceptions import ConfigurationError, SchedulerError
from repro.types import Edge

#: Granularity of the deterministic fault lattice: the hash picks one of
#: ``FAULT_STEPS`` equally likely points in ``[0, 1)``, so any rate that is a
#: multiple of ``1 / FAULT_STEPS`` is realised exactly in the long run.
FAULT_STEPS = 1 << 16

#: Decision outcomes for one wire attempt.
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
CORRUPT = "corrupt"


@dataclass(frozen=True)
class EdgeFaultRates:
    """Per-attempt fault probabilities of one directed link.

    Attributes:
        drop: Probability the attempt is lost in flight (receiver sees
            nothing; the sender's ARQ timeout fires).
        duplicate: Probability the attempt is delivered *twice* (the network
            spontaneously replays it; the receiver deduplicates, but the
            redundant copy still drains the link).
        corrupt: Probability the attempt arrives bit-flipped (the receiver's
            checksum rejects it, which costs exactly what a drop costs).
    """

    drop: Fraction = Fraction(0)
    duplicate: Fraction = Fraction(0)
    corrupt: Fraction = Fraction(0)

    def __post_init__(self) -> None:
        total = Fraction(0)
        for label, rate in (
            ("drop", self.drop), ("duplicate", self.duplicate), ("corrupt", self.corrupt)
        ):
            rate = Fraction(rate)
            if rate < 0 or rate > 1:
                raise SchedulerError(f"{label} rate must be in [0, 1], got {rate}")
            total += rate
        if total > 1:
            raise SchedulerError(f"fault rates sum to {total} > 1")

    @property
    def is_clean(self) -> bool:
        """Whether this link never misbehaves."""
        return (
            Fraction(self.drop) == 0
            and Fraction(self.duplicate) == 0
            and Fraction(self.corrupt) == 0
        )


@dataclass(frozen=True)
class LinkFaultPlan:
    """Deterministic per-edge fault schedule applied to every wire attempt.

    Attributes:
        name: Registry name (purely informational on ad-hoc instances).
        rates: Base fault rates applied to every directed link.
        per_edge: Per-directed-link overrides (replacing ``rates``).
        seed: Seed of the decision hash.
    """

    name: str = "none"
    rates: EdgeFaultRates = field(default_factory=EdgeFaultRates)
    per_edge: Mapping[Edge, EdgeFaultRates] = field(default_factory=dict)
    seed: int = 0

    @property
    def is_clean(self) -> bool:
        """Whether the plan never faults any link (the reliable base model)."""
        return self.rates.is_clean and all(
            rates.is_clean for rates in self.per_edge.values()
        )

    def edge_rates(self, edge: Edge) -> EdgeFaultRates:
        """Fault rates of one directed link."""
        if edge in self.per_edge:
            return self.per_edge[edge]
        return self.rates

    def decide(self, edge: Edge, attempt: int) -> str:
        """Fate of wire attempt number ``attempt`` (0-based, per edge).

        The decision is a deterministic function of ``(seed, edge, attempt)``:
        a SHA-256 hash picks one of :data:`FAULT_STEPS` lattice points in
        ``[0, 1)``, compared against the cumulative rate intervals in the
        fixed order drop | corrupt | duplicate | deliver.

        Returns:
            One of :data:`DROP`, :data:`CORRUPT`, :data:`DUPLICATE`,
            :data:`DELIVER`.
        """
        rates = self.edge_rates(edge)
        if rates.is_clean:
            return DELIVER
        digest = hashlib.sha256(
            f"{self.seed}|{edge[0]}->{edge[1]}|{attempt}".encode()
        ).digest()
        point = Fraction(int.from_bytes(digest[:4], "big") % FAULT_STEPS, FAULT_STEPS)
        threshold = Fraction(rates.drop)
        if point < threshold:
            return DROP
        threshold += Fraction(rates.corrupt)
        if point < threshold:
            return CORRUPT
        threshold += Fraction(rates.duplicate)
        if point < threshold:
            return DUPLICATE
        return DELIVER

    def scaled(self, factor: Fraction | int) -> "LinkFaultPlan":
        """A copy of this plan with every rate multiplied by ``factor``.

        ``scaled(0)`` is the plan's zero-rate shadow — structurally identical
        but clean — which is what the zero-fault contract tests sweep: every
        registered plan at rate 0 must reproduce the fault-free grids
        byte-identically.
        """
        factor = Fraction(factor)

        def scale(rates: EdgeFaultRates) -> EdgeFaultRates:
            return EdgeFaultRates(
                drop=Fraction(rates.drop) * factor,
                duplicate=Fraction(rates.duplicate) * factor,
                corrupt=Fraction(rates.corrupt) * factor,
            )

        return replace(
            self,
            rates=scale(self.rates),
            per_edge={edge: scale(rates) for edge, rates in self.per_edge.items()},
        )


_FAULT_PLAN_FACTORIES: Dict[str, Callable[[], LinkFaultPlan]] = {
    "none": lambda: LinkFaultPlan(name="none"),
    "drop-1pct": lambda: LinkFaultPlan(
        name="drop-1pct",
        rates=EdgeFaultRates(drop=Fraction(1, 100)),
        seed=11,
    ),
    "drop-10pct": lambda: LinkFaultPlan(
        name="drop-10pct",
        rates=EdgeFaultRates(drop=Fraction(1, 10)),
        seed=11,
    ),
    "drop-10pct-one-edge": lambda: LinkFaultPlan(
        # A single flaky link out of the source: every topology in the
        # headline families contains the edge (1, 2), which loses 10% of its
        # attempts while every other link is perfect.  On a graph without
        # that edge the plan degenerates to fully clean (cf. the lan-wan
        # link model's node-7 convention).
        name="drop-10pct-one-edge",
        per_edge={(1, 2): EdgeFaultRates(drop=Fraction(1, 10))},
        seed=11,
    ),
    "dup-mild": lambda: LinkFaultPlan(
        name="dup-mild",
        rates=EdgeFaultRates(duplicate=Fraction(1, 20)),
        seed=11,
    ),
    "corrupt-1pct": lambda: LinkFaultPlan(
        name="corrupt-1pct",
        rates=EdgeFaultRates(corrupt=Fraction(1, 100)),
        seed=11,
    ),
    "lossy-mix": lambda: LinkFaultPlan(
        # Everything at once, mildly: the plan the chaos-style tests lean on.
        name="lossy-mix",
        rates=EdgeFaultRates(
            drop=Fraction(1, 25),
            duplicate=Fraction(1, 50),
            corrupt=Fraction(1, 50),
        ),
        seed=11,
    ),
}


def named_fault_plans() -> List[str]:
    """All registered fault-plan names, sorted."""
    return sorted(_FAULT_PLAN_FACTORIES)


def fault_plan(name: str) -> LinkFaultPlan:
    """Instantiate the named fault plan.

    Raises:
        ConfigurationError: if the name is unknown.
    """
    if name not in _FAULT_PLAN_FACTORIES:
        raise ConfigurationError(
            f"unknown fault plan {name!r}; available: {', '.join(named_fault_plans())}"
        )
    return _FAULT_PLAN_FACTORIES[name]()


def register_fault_plan(
    name: str, factory: Callable[[], LinkFaultPlan], replace: bool = False
) -> None:
    """Register a named fault-plan factory.

    Raises:
        ConfigurationError: if the name is taken and ``replace`` is not set.
    """
    if name in _FAULT_PLAN_FACTORIES and not replace:
        raise ConfigurationError(f"fault plan {name!r} is already registered")
    _FAULT_PLAN_FACTORIES[name] = factory
