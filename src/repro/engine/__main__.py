"""Command-line entry point: ``python -m repro.engine --spec <name> --workers N``.

Runs (or resumes) a named experiment spec, persists one JSONL row per cell,
and prints the protocol-comparison table next to the paper's analytical
bounds.  Rerunning the same command skips every already-completed cell.

Examples::

    python -m repro.engine --list-specs
    python -m repro.engine --spec nab_vs_classical --workers 4
    python -m repro.engine --spec datacenter_scale

The ``datacenter_scale`` spec charts gamma*, rho*, the Eq. 6 throughput and
the Theorem 2 capacity bound on 64-1024-node fat-tree / torus /
ring-of-rings / Octopus-pod fabrics.  Its cells are *bounds-only* — no
broadcast protocol executes; each row's ``bounds`` field is the deliverable
and its ``record`` is null (rendered as ``bounds`` in the comparison table).
The Gomory-Hu analysis layer is what makes these grids affordable: one cut
tree of ``n - 1`` flow solves per distinct graph instead of per-pair Dinic
runs.  ``datacenter_scale_f1`` adds the ``f = 1`` sweep on the smallest
feasible member of each family.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict

from repro.engine.report import render_comparison, summarize_rows
from repro.engine.runner import run_spec
from repro.engine.specs import get_spec, named_specs
from repro.exceptions import ConfigurationError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Run a named experiment sweep with persisted, resumable results.",
    )
    parser.add_argument("--spec", help="name of the experiment spec to run")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial, default)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSONL path (default: results/<spec>.jsonl)",
    )
    parser.add_argument(
        "--limit", type=int, default=None,
        help="run at most N pending cells, then stop (for partial runs)",
    )
    parser.add_argument(
        "--fresh", action="store_true",
        help="ignore existing results and recompute every cell",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile every computed cell and dump the top-25 cumulative "
             "report to <out>.profile.txt next to the JSONL (forces serial "
             "execution)",
    )
    parser.add_argument(
        "--max-cell-retries", type=int, default=2,
        help="with --workers > 1: how many times a cell whose worker process "
             "died (OOM kill, SIGKILL) is retried on a respawned worker "
             "before being quarantined to <out>.quarantine.jsonl "
             "(default: 2)",
    )
    parser.add_argument(
        "--list", "--list-specs", dest="list_specs", action="store_true",
        help="list available specs and exit",
    )
    parser.add_argument(
        "--list-strategies", dest="list_strategies", action="store_true",
        help="list registered adversary strategies (usable in spec strategy "
             "axes and as search components) and exit",
    )
    return parser


def _list_specs() -> int:
    for name in named_specs():
        spec = get_spec(name)
        grid = len(spec.expand())
        print(f"{name}  ({grid} cells)")
        if spec.description:
            print(f"    {spec.description}")
    return 0


def _list_strategies() -> int:
    from repro.workloads import make_strategy, named_strategies

    for name in named_strategies():
        strategy = make_strategy(name, seed=0)
        doc = (type(strategy).__doc__ or "").strip().splitlines()
        print(name)
        if doc:
            print(f"    {doc[0]}")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_specs:
        return _list_specs()
    if args.list_strategies:
        return _list_strategies()
    if not args.spec:
        print("error: --spec is required (use --list-specs to see available specs)",
              file=sys.stderr)
        return 2

    try:
        spec = get_spec(args.spec)
    except ConfigurationError:
        print(
            f"error: unknown spec {args.spec!r}; registered specs are:",
            file=sys.stderr,
        )
        for name in named_specs():
            print(f"  {name}", file=sys.stderr)
        return 2
    out_path = args.out or os.path.join("results", f"{spec.name}.jsonl")

    def _progress(row: Dict[str, object]) -> None:
        status = "error" if row.get("error") else "ok"
        print(f"  [{status}] {row['cell_id']}", flush=True)

    if args.profile and args.workers > 1:
        print("profiling forces serial execution; ignoring --workers", file=sys.stderr)

    started = time.perf_counter()
    summary = run_spec(
        spec,
        out_path=out_path,
        workers=args.workers,
        limit=args.limit,
        resume=not args.fresh,
        progress=_progress,
        profile=args.profile,
        max_cell_retries=args.max_cell_retries,
    )
    elapsed = time.perf_counter() - started

    print()
    resumed = f"{summary.skipped_cells} resumed"
    if summary.discarded_rows:
        # Covers truncated/corrupt lines, rows from another grid/seed, and
        # errored rows deliberately recomputed.
        resumed += f" ({summary.discarded_rows} line(s) not reused)"
    print(
        f"spec {summary.spec_name}: {summary.computed_cells} cell(s) computed, "
        f"{resumed}, {summary.total_cells} in grid "
        f"({elapsed:.2f}s wall)"
    )
    print(f"results: {summary.out_path}")
    if summary.profile_path:
        print(f"profiles: {summary.profile_path}")
    if summary.retried_cells or summary.quarantined_cells:
        # Degraded sweeps must be loud: these cells hit worker crashes.
        line = f"worker crashes: {summary.retried_cells} cell(s) retried"
        if summary.quarantined_cells:
            line += (
                f", {summary.quarantined_cells} quarantined"
                f" -> {summary.quarantine_path}"
            )
        print(line)
    if summary.stale_quarantined_cells:
        # A prior run's quarantine is still unresolved even though this run
        # retried nothing — without this line a stale quarantine file would
        # be silently ignored.
        print(
            f"stale quarantine: {summary.stale_quarantined_cells} cell(s) from a "
            f"prior run still unresolved -> {summary.quarantine_path}"
        )
    counters = summarize_rows(summary.rows)
    print(
        f"errors: {counters['errors']}  spec violations: {counters['spec_violations']}  "
        f"dispute-control executions: {counters['dispute_control_executions']}"
    )
    if counters["retransmit_bits"] or counters["dropped_messages"]:
        print(
            f"link faults: {counters['retransmit_bits']} retransmitted bit(s), "
            f"{counters['dropped_messages']} message(s) dropped after retries"
        )
    print()
    print(render_comparison(summary.rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
