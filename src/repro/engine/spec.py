"""Declarative sweep grids: ``ExperimentSpec`` and its expansion into cells.

An :class:`ExperimentSpec` names the axes of a sweep — topologies × adversary
strategies × payload sizes × ``f`` × protocols — and :meth:`ExperimentSpec.expand`
cross-products them into concrete :class:`Cell`s.  Each cell carries a
deterministic seed derived from the spec's base seed and the cell identity, so
input streams and seeded adversary strategies are bit-for-bit reproducible no
matter which worker process executes the cell or in what order.

Infeasible grid points (too few nodes for ``n >= 3f + 1``, or network
connectivity below ``2f + 1``) are filtered out during expansion rather than
failing at run time, so specs can list topology and fault axes freely.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.exceptions import ConfigurationError
from repro.graph.connectivity import meets_connectivity_requirement
from repro.sched.faults import named_fault_plans
from repro.sched.links import named_link_models
from repro.types import NodeId
from repro.workloads.scenarios import (
    Scenario,
    adversarial_scenario,
    fault_free_scenario,
    make_strategy,
    named_strategies,
    strategy_attacks_source,
)
from repro.workloads.topologies import topology


def canonical_params(params: Mapping[str, object]) -> str:
    """Canonical JSON for a strategy-parameter mapping (sorted keys, no spaces).

    The canonical string is what cell ids embed and what persisted rows carry,
    so byte-identical parameters always produce byte-identical cell ids and
    derived seeds.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))

#: Strategy-axis value meaning "no Byzantine nodes at all".
FAULT_FREE = "fault-free"

#: Execution-axis values: run instances strictly one after another, or
#: overlapped per the Figure 3 pipeline (NAB only).
SEQUENTIAL = "sequential"
PIPELINED = "pipelined"
EXECUTIONS = (SEQUENTIAL, PIPELINED)


def _supports_pipelined(protocol_name: str) -> bool:
    """Whether the named protocol declares pipelined support.

    Unknown names expand normally (their cells record a per-cell lookup
    error at run time) but never get pipelined grid points.
    """
    from repro.engine.protocol import get_protocol

    try:
        return get_protocol(protocol_name).supports_pipelined
    except ConfigurationError:
        return False


def cell_seed(base_seed: int, cell_id: str) -> int:
    """A deterministic 64-bit seed for one cell, stable across processes.

    Derived from a cryptographic hash (not Python's randomised ``hash``) so
    resumed and parallel runs regenerate identical inputs.
    """
    digest = hashlib.sha256(f"{base_seed}|{cell_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Cell:
    """One concrete grid point of an experiment sweep.

    Cells are plain picklable values: the graph and strategy objects are
    (re)built inside whichever worker process executes the cell, via
    :meth:`scenario`.
    """

    spec_name: str
    cell_id: str
    topology: str
    strategy: str
    payload_bytes: int
    instances: int
    max_faults: int
    protocol: str
    source: NodeId
    seed: int
    faulty_nodes: Tuple[NodeId, ...]
    execution: str = SEQUENTIAL
    link_model: str = "instant"
    fault_plan: str = "none"
    #: Canonical-JSON strategy parameters (see :func:`canonical_params`), or
    #: the empty string for parameterless cells — the empty default keeps the
    #: ids/seeds of every pre-existing grid untouched.  May carry a
    #: ``"faulty_nodes"`` key overriding the default faulty-set placement
    #: (consumed here, not by the strategy factory), which is how
    #: search-found placements are committed in specs.
    strategy_params: str = ""
    #: Analytical-bounds-only cell: the runner computes gamma*/rho*/Eq. 6/
    #: Theorem 2 and skips protocol execution entirely (``record`` is null).
    #: The datacenter-scale grids use this — executing a broadcast protocol
    #: on a 1024-node fabric is neither needed nor affordable for charting
    #: the paper's bounds.
    bounds_only: bool = False

    def scenario(self) -> Scenario:
        """Build the fully specified scenario for this cell."""
        if self.strategy == FAULT_FREE:
            return fault_free_scenario(
                topology_name=self.topology,
                instances=self.instances,
                value_bytes=self.payload_bytes,
                max_faults=self.max_faults,
                seed=self.seed,
                source=self.source,
            )
        params = json.loads(self.strategy_params) if self.strategy_params else {}
        params.pop("faulty_nodes", None)  # placement, consumed at expansion
        return adversarial_scenario(
            topology_name=self.topology,
            strategy_name=self.strategy,
            faulty_nodes=self.faulty_nodes,
            instances=self.instances,
            value_bytes=self.payload_bytes,
            max_faults=self.max_faults,
            seed=self.seed,
            source=self.source,
            strategy_params=params or None,
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative sweep: the cross product of every listed axis.

    Attributes:
        name: Spec name, stamped on every persisted row.
        topologies: Named topologies (see :func:`repro.workloads.topology`).
        strategies: Adversary strategy names (see
            :func:`repro.workloads.named_strategies`) and/or
            :data:`FAULT_FREE`.
        payload_bytes: Per-instance value sizes in bytes.
        fault_counts: Values of the resilience parameter ``f``.
        protocols: Registered protocol names to run on every scenario.
        executions: Execution modes (:data:`SEQUENTIAL` and/or
            :data:`PIPELINED`); pipelined points are expanded only for
            pipeline-capable protocols.
        link_models: Named link models (see
            :func:`repro.sched.links.named_link_models`) the scheduled
            transport applies; ``"instant"`` is the paper's base model.
        fault_plans: Named link-fault plans (see
            :func:`repro.sched.faults.named_fault_plans`) the ARQ transport
            applies; ``"none"`` is the paper's reliable base model.
        instances: Number of broadcast instances per cell (``Q``).
        source: The broadcasting node (the paper uses node 1).
        base_seed: Root seed all per-cell seeds are derived from.
        description: Human-readable summary for ``--list``-style output.
        kernel_backend: Optional GF kernel backend name forced for every
            field the spec's cells build (see :mod:`repro.gf.backends`).
            Empty string (the default) keeps per-field auto-selection; the
            ``REPRO_GF_BACKEND`` environment variable, when set, wins over
            the spec value.  All backends compute identical values, so this
            axis never appears in cell ids — results stay byte-identical
            whichever backend executes them.
    """

    name: str
    topologies: Tuple[str, ...]
    strategies: Tuple[str, ...]
    payload_bytes: Tuple[int, ...]
    fault_counts: Tuple[int, ...]
    protocols: Tuple[str, ...]
    executions: Tuple[str, ...] = (SEQUENTIAL,)
    link_models: Tuple[str, ...] = ("instant",)
    fault_plans: Tuple[str, ...] = ("none",)
    instances: int = 3
    source: NodeId = 1
    base_seed: int = 0
    description: str = ""
    kernel_backend: str = ""
    #: Per-strategy parameter mappings, keyed by strategy name.  Parameters
    #: are validated at expansion, serialised canonically onto each cell
    #: (``Cell.strategy_params``) and appended to the cell id as ``|sp=...``
    #: — so parameterless grids keep their historical ids and seeds.  A
    #: ``"faulty_nodes"`` entry overrides the default faulty-set placement.
    strategy_params: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    #: When true, every expanded cell is analytical-bounds-only (see
    #: :attr:`Cell.bounds_only`); cell ids gain a ``|bounds`` suffix so the
    #: ids (and derived seeds) of ordinary grids are untouched.
    bounds_only: bool = False

    def _faulty_nodes(
        self, strategy: str, nodes: List[NodeId], max_faults: int
    ) -> Tuple[NodeId, ...]:
        """Deterministic faulty-set placement for one cell.

        Source-attacking strategies corrupt the source itself; all others
        corrupt the ``f`` highest-numbered non-source nodes (the nodes the
        example gallery traditionally sacrifices).
        """
        if strategy == FAULT_FREE:
            return ()
        override = self.strategy_params.get(strategy, {}).get("faulty_nodes")
        if override is not None:
            return tuple(sorted(override))
        non_source = [node for node in nodes if node != self.source]
        if strategy_attacks_source(strategy):
            extras = sorted(non_source, reverse=True)[: max_faults - 1]
            return tuple(sorted([self.source] + extras))
        return tuple(sorted(sorted(non_source, reverse=True)[:max_faults]))

    def expand(self) -> List[Cell]:
        """Cross-product every axis into concrete cells, in deterministic order.

        Infeasible combinations (``n < 3f + 1`` or connectivity below
        ``2f + 1``) are skipped.  Unknown strategy names raise immediately so
        typos do not silently shrink the grid.
        """
        known = set(named_strategies()) | {FAULT_FREE}
        for strategy in self.strategies:
            if strategy not in known:
                raise ConfigurationError(
                    f"spec {self.name!r} references unknown strategy {strategy!r}"
                )
        for strategy, params in self.strategy_params.items():
            if strategy == FAULT_FREE or strategy not in known:
                raise ConfigurationError(
                    f"spec {self.name!r} has strategy_params for "
                    f"{strategy!r}, which is not a parametrisable strategy"
                )
            probe = dict(params)
            override = probe.pop("faulty_nodes", None)
            if override is not None:
                nodes = list(override)
                if not nodes or any(
                    isinstance(node, bool) or not isinstance(node, int)
                    for node in nodes
                ) or len(nodes) != len(set(nodes)):
                    raise ConfigurationError(
                        f"spec {self.name!r}: faulty_nodes override for "
                        f"{strategy!r} must be distinct node ids, got {override!r}"
                    )
                if strategy in self.strategies and any(
                    len(nodes) > f for f in self.fault_counts
                ):
                    raise ConfigurationError(
                        f"spec {self.name!r}: faulty_nodes override for "
                        f"{strategy!r} exceeds a listed fault count"
                    )
            # Instantiating validates the parameter names and values.
            make_strategy(strategy, 0, probe)
        for execution in self.executions:
            if execution not in EXECUTIONS:
                raise ConfigurationError(
                    f"spec {self.name!r} references unknown execution {execution!r}; "
                    f"available: {', '.join(EXECUTIONS)}"
                )
        known_models = set(named_link_models())
        for model in self.link_models:
            if model not in known_models:
                raise ConfigurationError(
                    f"spec {self.name!r} references unknown link model {model!r}; "
                    f"available: {', '.join(sorted(known_models))}"
                )
        if self.kernel_backend:
            from repro.gf.backends import available_backend_names

            if self.kernel_backend not in available_backend_names():
                raise ConfigurationError(
                    f"spec {self.name!r} references unknown or unavailable GF "
                    f"kernel backend {self.kernel_backend!r}; available: "
                    f"{', '.join(available_backend_names())}"
                )
        known_plans = set(named_fault_plans())
        for plan in self.fault_plans:
            if plan not in known_plans:
                raise ConfigurationError(
                    f"spec {self.name!r} references unknown fault plan {plan!r}; "
                    f"available: {', '.join(sorted(known_plans))}"
                )
        cells: List[Cell] = []
        feasibility: Dict[Tuple[str, int], bool] = {}
        node_lists: Dict[str, List[NodeId]] = {}
        for topology_name in self.topologies:
            if topology_name not in node_lists:
                node_lists[topology_name] = topology(topology_name).nodes()
            for max_faults in self.fault_counts:
                key = (topology_name, max_faults)
                if key not in feasibility:
                    graph = topology(topology_name)
                    feasibility[key] = (
                        graph.node_count() >= 3 * max_faults + 1
                        and meets_connectivity_requirement(graph, max_faults)
                    )
                if not feasibility[key]:
                    continue
                for strategy in self.strategies:
                    faulty = self._faulty_nodes(
                        strategy, node_lists[topology_name], max_faults
                    )
                    if not set(faulty) <= set(node_lists[topology_name]):
                        raise ConfigurationError(
                            f"spec {self.name!r}: faulty_nodes {sorted(faulty)} "
                            f"are not all nodes of topology {topology_name!r}"
                        )
                    params = (
                        {}
                        if strategy == FAULT_FREE
                        else self.strategy_params.get(strategy, {})
                    )
                    params_json = canonical_params(params) if params else ""
                    for payload in self.payload_bytes:
                        for protocol in self.protocols:
                            for execution in self.executions:
                                if execution == PIPELINED and not _supports_pipelined(
                                    protocol
                                ):
                                    continue
                                for model in self.link_models:
                                    for plan in self.fault_plans:
                                        cell_id = (
                                            f"{protocol}|{topology_name}|{strategy}"
                                            f"|f={max_faults}|L={payload}"
                                            f"|Q={self.instances}"
                                            f"|src={self.source}"
                                        )
                                        # Non-default axis values are appended
                                        # so default-grid cell ids (and hence
                                        # their derived seeds and any
                                        # previously persisted results) stay
                                        # exactly as they were before these
                                        # axes existed.
                                        if execution != SEQUENTIAL:
                                            cell_id += f"|exec={execution}"
                                        if model != "instant":
                                            cell_id += f"|lm={model}"
                                        if plan != "none":
                                            cell_id += f"|fp={plan}"
                                        if params_json:
                                            cell_id += f"|sp={params_json}"
                                        if self.bounds_only:
                                            cell_id += "|bounds"
                                        cells.append(
                                            Cell(
                                                spec_name=self.name,
                                                cell_id=cell_id,
                                                topology=topology_name,
                                                strategy=strategy,
                                                payload_bytes=payload,
                                                instances=self.instances,
                                                max_faults=max_faults,
                                                protocol=protocol,
                                                source=self.source,
                                                seed=cell_seed(
                                                    self.base_seed, cell_id
                                                ),
                                                faulty_nodes=faulty,
                                                execution=execution,
                                                link_model=model,
                                                fault_plan=plan,
                                                strategy_params=params_json,
                                                bounds_only=self.bounds_only,
                                            )
                                        )
        return cells
