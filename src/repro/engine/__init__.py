"""The unified experiment engine: one protocol interface, declarative sweeps,
a parallel runner with persisted results, and reporting.

Three layers:

* :mod:`repro.engine.protocol` — the :class:`Protocol` ABC
  (``run(graph, source, inputs, fault_model, params) -> RunRecord``) and the
  name-keyed registry with adapters for NAB, classical full-value flooding
  and chunked direct EIG.
* :mod:`repro.engine.spec` — :class:`ExperimentSpec` cross-products
  topologies × adversary strategies × payload sizes × ``f`` × protocols into
  concrete cells with deterministic per-cell seeds.
* :mod:`repro.engine.runner` / :mod:`repro.engine.report` — a supervised
  ``multiprocessing`` runner that shards cells across workers (respawning
  crashed workers and quarantining cells that keep killing them), streams one
  JSONL row per cell, resumes by skipping completed cells, and a reporting
  layer that renders measured throughput against the Eq. 6 / Theorem 2
  bounds.

Run a named spec from the command line::

    python -m repro.engine --spec nab_vs_classical --workers 4
"""

from repro.engine.protocol import (
    Protocol,
    ReliabilityCollector,
    attach_reliability_stats,
    get_protocol,
    network_factory_from_params,
    register_protocol,
    registered_protocols,
)
from repro.engine.report import render_comparison, summarize_rows
from repro.engine.runner import (
    ROW_SCHEMA_VERSION,
    RunSummary,
    dump_row,
    run_cell,
    run_spec,
)
from repro.engine.spec import (
    EXECUTIONS,
    FAULT_FREE,
    PIPELINED,
    SEQUENTIAL,
    Cell,
    ExperimentSpec,
    cell_seed,
)
from repro.engine.specs import get_spec, named_specs, register_spec
from repro.types import RunRecord

__all__ = [
    "Protocol",
    "register_protocol",
    "get_protocol",
    "registered_protocols",
    "RunRecord",
    "ExperimentSpec",
    "Cell",
    "FAULT_FREE",
    "SEQUENTIAL",
    "PIPELINED",
    "EXECUTIONS",
    "network_factory_from_params",
    "ReliabilityCollector",
    "attach_reliability_stats",
    "cell_seed",
    "run_spec",
    "run_cell",
    "RunSummary",
    "ROW_SCHEMA_VERSION",
    "dump_row",
    "render_comparison",
    "summarize_rows",
    "get_spec",
    "named_specs",
    "register_spec",
]
