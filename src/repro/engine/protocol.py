"""The ``Protocol`` interface and name-keyed registry.

Every broadcast algorithm the experiment engine can sweep is wrapped in a
small adapter exposing one entry point::

    run(graph, source, inputs, fault_model, params) -> RunRecord

so sweeps, the parallel runner and the reporting layer never special-case a
protocol.  Adapters for NAB, the classical full-value flooding baseline and
the chunked direct-EIG baseline are registered at import time; external code
can register additional protocols with :func:`register_protocol`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.classical.flooding import (
    classical_flooding_run_record,
    eig_chunked_run_record,
)
from repro.core.nab import NetworkAwareBroadcast
from repro.exceptions import ConfigurationError
from repro.graph.network_graph import NetworkGraph
from repro.sched.faults import LinkFaultPlan, fault_plan
from repro.sched.links import LinkModel, link_model
from repro.transport.faults import FaultModel
from repro.transport.network import NetworkFactory
from repro.transport.reliable import ReliableNetwork, accumulate_reliability_stats
from repro.transport.scheduled import ScheduledNetwork
from repro.types import NodeId, RunRecord


class ReliabilityCollector:
    """A transport factory that builds ARQ networks and aggregates their stats.

    Protocols construct one network per instance through their
    ``network_factory`` hook; this callable keeps every network it built so
    the adapter can fold the per-network
    :meth:`~repro.transport.reliable.ReliableNetwork.reliability_stats` into
    one per-run total after the run (see :func:`attach_reliability_stats`).
    """

    def __init__(self, plan: LinkFaultPlan, model: Optional[LinkModel]) -> None:
        self.plan = plan
        self.model = model
        self.networks: List[ReliableNetwork] = []

    def __call__(self, graph: NetworkGraph, fault_model: FaultModel) -> ReliableNetwork:
        network = ReliableNetwork(
            graph, fault_model, link_model=self.model, fault_plan=self.plan
        )
        self.networks.append(network)
        return network

    def totals(self) -> Dict[str, object]:
        """Run-wide ARQ overhead: every constructed network's stats, summed."""
        totals: Dict[str, object] = {}
        for network in self.networks:
            accumulate_reliability_stats(totals, network.reliability_stats())
        return totals


def network_factory_from_params(params: Mapping[str, object]) -> Optional[NetworkFactory]:
    """Build the transport factory a ``params`` mapping asks for.

    When ``params`` carries a ``"link_model"`` name the run goes through
    :class:`ScheduledNetwork` with that named model (``"instant"`` included —
    the measured clock then equals the analytical one exactly, per the
    scheduler contract); a ``"fault_plan"`` name upgrades the transport to
    the ARQ :class:`~repro.transport.reliable.ReliableNetwork` over that plan
    (composable with ``"link_model"``).  Without either key the protocol
    keeps its default zero-delay transport.
    """
    model_name = params.get("link_model")
    model = link_model(str(model_name)) if model_name is not None else None
    plan_name = params.get("fault_plan")
    if plan_name is not None:
        return ReliabilityCollector(fault_plan(str(plan_name)), model)
    if model is None:
        return None
    return lambda graph, fault_model: ScheduledNetwork(
        graph, fault_model, link_model=model
    )


def attach_reliability_stats(
    record: RunRecord, factory: Optional[NetworkFactory]
) -> RunRecord:
    """Copy a run's aggregated ARQ overhead into ``record.metadata``.

    A no-op unless the run went through a :class:`ReliabilityCollector` with a
    *non-clean* fault plan: clean plans are bit-identical to the plain
    scheduled transport by contract, so their records must not change shape
    either (the zero-fault byte-identity guarantee).
    """
    if not isinstance(factory, ReliabilityCollector) or factory.plan.is_clean:
        return record
    metadata = dict(record.metadata)
    metadata["reliability"] = factory.totals()
    return replace(record, metadata=metadata)


def _check_execution(params: Mapping[str, object], protocol: "Protocol") -> bool:
    """Whether ``params`` asks for pipelined execution (validated).

    Raises:
        ConfigurationError: if pipelined execution is requested but the
            protocol does not declare :attr:`Protocol.supports_pipelined`.
    """
    pipelined = params.get("execution", "sequential") == "pipelined"
    if pipelined and not protocol.supports_pipelined:
        raise ConfigurationError(
            f"protocol {protocol.name!r} does not support pipelined execution"
        )
    return pipelined


class Protocol(ABC):
    """A broadcast protocol the engine can run on a scenario.

    Subclasses set :attr:`name` (the registry key, also stamped on every
    :class:`RunRecord` they produce) and implement :meth:`run`.
    """

    #: Registry key; must be unique among registered protocols.
    name: str = "abstract"

    #: Whether the protocol honours ``params["execution"] == "pipelined"``.
    #: The single source of truth consulted both by the adapters (rejecting
    #: pipelined params) and by grid expansion (skipping pipelined cells).
    supports_pipelined: bool = False

    @abstractmethod
    def run(
        self,
        graph: NetworkGraph,
        source: NodeId,
        inputs: Sequence[bytes],
        fault_model: FaultModel,
        params: Mapping[str, object],
    ) -> RunRecord:
        """Broadcast every input value in order and summarise the run.

        Args:
            graph: The capacitated network.
            source: The broadcasting node.
            inputs: One byte-string value per instance.
            fault_model: Which nodes are Byzantine and their strategy.
            params: Protocol parameters; ``"max_faults"`` is always present,
                adapters may consume extras (``"coding_seed"``,
                ``"chunk_bytes"``, ``"execution"``, ``"link_model"``, ...).
        """


class NABProtocol(Protocol):
    """The paper's Network-Aware Broadcast with amortised dispute control."""

    name = "nab"
    supports_pipelined = True

    def run(self, graph, source, inputs, fault_model, params):
        pipelined = _check_execution(params, self)
        factory = network_factory_from_params(params)
        nab = NetworkAwareBroadcast(
            graph,
            source,
            int(params["max_faults"]),
            fault_model=fault_model,
            coding_seed=int(params.get("coding_seed", 0)),
            network_factory=factory,
        )
        if pipelined:
            record = nab.run_pipelined_record(list(inputs))
        else:
            record = nab.run_record(list(inputs))
        return attach_reliability_stats(record, factory)


class ClassicalFloodingProtocol(Protocol):
    """Capacity-oblivious baseline: full-value EIG flooding over disjoint paths."""

    name = "classical-flooding"

    def run(self, graph, source, inputs, fault_model, params):
        _check_execution(params, self)
        factory = network_factory_from_params(params)
        record = classical_flooding_run_record(
            graph,
            source,
            list(inputs),
            int(params["max_faults"]),
            fault_model,
            network_factory=factory,
        )
        return attach_reliability_stats(record, factory)


class EIGChunkedProtocol(Protocol):
    """Capacity-oblivious baseline: per-chunk direct EIG broadcasts."""

    name = "eig"

    def run(self, graph, source, inputs, fault_model, params):
        _check_execution(params, self)
        factory = network_factory_from_params(params)
        record = eig_chunked_run_record(
            graph,
            source,
            list(inputs),
            int(params["max_faults"]),
            fault_model,
            chunk_bytes=int(params.get("chunk_bytes", 1)),
            network_factory=factory,
        )
        return attach_reliability_stats(record, factory)


_REGISTRY: Dict[str, Protocol] = {}


def register_protocol(protocol: Protocol, replace: bool = False) -> None:
    """Add a protocol to the registry under its :attr:`Protocol.name`.

    Raises:
        ConfigurationError: if the name is already taken and ``replace`` is
            not set, or the protocol has no usable name.
    """
    name = protocol.name
    if not name or name == Protocol.name:
        raise ConfigurationError("protocol must define a concrete registry name")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(f"protocol {name!r} is already registered")
    _REGISTRY[name] = protocol


def get_protocol(name: str) -> Protocol:
    """Look up a registered protocol by name.

    Raises:
        ConfigurationError: if the name is unknown.
    """
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(registered_protocols())}"
        )
    return _REGISTRY[name]


def registered_protocols() -> List[str]:
    """All registered protocol names, sorted."""
    return sorted(_REGISTRY)


register_protocol(NABProtocol())
register_protocol(ClassicalFloodingProtocol())
register_protocol(EIGChunkedProtocol())
