"""Parallel cell execution with persisted, resumable JSONL results.

The runner shards a spec's cells across supervised ``multiprocessing``
workers, streams one JSON row per completed cell to the output file
(append-only, crash safe), and on completion compacts the file into canonical
grid order via a fsync-then-rename.  Rows are pure functions of their cell —
exact rationals are serialised as ``"p/q"`` strings, every mapping key is a
string, and ``json.dumps(..., sort_keys=True)`` is used throughout — so a
fresh run and a killed-then-resumed run of the same spec produce byte-identical
files.

Resume: before executing, the runner reads any existing output file, keeps
every well-formed row whose cell id belongs to the current grid (matching
spec, seed and schema version), and only computes the rest.

Worker crashes (OOM kill, SIGKILL, segfault) never stall a sweep: each worker
owns a private pipe, so its death is detected as EOF and attributed to exactly
one in-flight cell, which is retried with backoff on a respawned worker and —
after ``max_cell_retries`` failures — quarantined to
``<out>.quarantine.jsonl`` instead of aborting the run.

Each worker clears the process-wide min-cut cache whenever it switches to an
unrelated topology (cells arrive grouped by topology, so this is rare) and
relies on :func:`repro.gf.field.get_field` canonicalisation to share field
tables within the worker.
"""

from __future__ import annotations

import cProfile
import io
import json
import multiprocessing
import os
import pstats
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.capacity.bounds import CapacityAnalysis, analyse_network
from repro.classical.relay import clear_relay_path_cache
from repro.coding.verification import clear_verification_cache
from repro.engine.protocol import get_protocol
from repro.engine.spec import Cell, ExperimentSpec
from repro.exceptions import ConfigurationError
from repro.gf.field import clear_kernel_caches
from repro.graph.flow_cache import clear_mincut_cache
from repro.graph.gomory_hu import clear_gomory_hu_cache
from repro.graph.spanning_trees import clear_pack_cache
from repro.sched.faults import fault_plan

#: Version stamp of the persisted row layout; bump on breaking changes so
#: resume never mixes incompatible rows.
ROW_SCHEMA_VERSION = 1


#: Per-process memo of analytical bounds keyed by (topology, source, f); the
#: bounds depend only on graph structure, so the handful of distinct keys in a
#: grid are computed once per worker instead of once per cell.
_ANALYSIS_MEMO: Dict[tuple, CapacityAnalysis] = {}


def _plan_is_clean(plan_name: str) -> bool:
    """Whether the named fault plan never faults a link.

    Unknown names count as non-clean: the row then carries the plan name, and
    the lookup failure surfaces in its ``error`` field instead of here.
    """
    try:
        return fault_plan(plan_name).is_clean
    except ConfigurationError:
        return False


def _bounds_jsonable(analysis: CapacityAnalysis) -> Dict[str, object]:
    return {
        "gamma_star": analysis.gamma_star,
        "rho_star": analysis.rho_star,
        "nab_lower_bound": str(analysis.nab_lower_bound),
        "capacity_upper_bound": str(analysis.capacity_upper_bound),
        "guaranteed_fraction": str(analysis.guaranteed_fraction),
        "achieved_fraction": str(analysis.achieved_fraction),
    }


def run_cell(cell: Cell) -> Dict[str, object]:
    """Execute one cell and return its persisted-row dict.

    The row is deterministic: it contains no timestamps or host information,
    only the cell identity, the protocol's :class:`RunRecord` and the
    network's analytical bounds.  Protocol failures are captured in an
    ``"error"`` field instead of aborting the sweep.
    """
    scenario = cell.scenario()
    row: Dict[str, object] = {
        "schema": ROW_SCHEMA_VERSION,
        "spec": cell.spec_name,
        "cell_id": cell.cell_id,
        "seed": cell.seed,
        "topology": cell.topology,
        "strategy": cell.strategy,
        "faulty_nodes": list(cell.faulty_nodes),
        "payload_bytes": cell.payload_bytes,
        "instances": cell.instances,
        "max_faults": cell.max_faults,
        "protocol": cell.protocol,
        "source": scenario.source,
        "execution": cell.execution,
        "link_model": cell.link_model,
    }
    if cell.fault_plan != "none" and not _plan_is_clean(cell.fault_plan):
        # Conditional so rows of fault-free grids keep the exact byte layout
        # they had before the fault-plan axis existed — and so a zero-rate
        # plan (clean by construction) reproduces the fault-free rows
        # byte-identically even though it routes through the ARQ transport.
        row["fault_plan"] = cell.fault_plan
    if cell.strategy_params:
        # Same conditional-key idiom: parameterless grids keep their exact
        # pre-existing byte layout.
        row["strategy_params"] = cell.strategy_params
    try:
        memo_key = (cell.topology, scenario.source, cell.max_faults)
        analysis = _ANALYSIS_MEMO.get(memo_key)
        if analysis is None:
            analysis = analyse_network(scenario.graph, scenario.source, cell.max_faults)
            _ANALYSIS_MEMO[memo_key] = analysis
        if cell.bounds_only:
            # Analytical cell: gamma*/rho*/Eq. 6/Theorem 2 are the whole
            # deliverable; no protocol runs (record stays null, error None,
            # so resume keeps the row).
            row["record"] = None
            row["bounds"] = _bounds_jsonable(analysis)
            row["error"] = None
            return row
        protocol = get_protocol(cell.protocol)
        params: Dict[str, object] = {
            "max_faults": cell.max_faults,
            "coding_seed": cell.seed,
            "execution": cell.execution,
        }
        if cell.link_model != "instant":
            # The zero-latency scheduled clock is contractually identical to
            # the plain transport's (see repro.transport.scheduled), so
            # default cells skip the per-send scheduling bookkeeping entirely.
            params["link_model"] = cell.link_model
        if cell.fault_plan != "none":
            # Any named plan (clean ones included) routes through the ARQ
            # transport — the clean fast path is contractually bit-identical
            # to the default transport, and exercising it keeps the zero-rate
            # byte-identity guarantee honest.  Only "none" itself skips the
            # per-send bookkeeping entirely, mirroring link_model "instant".
            params["fault_plan"] = cell.fault_plan
        record = protocol.run(
            scenario.graph,
            scenario.source,
            list(scenario.inputs),
            scenario.fault_model,
            params,
        )
        row["record"] = record.to_jsonable()
        row["bounds"] = _bounds_jsonable(analysis)
        row["error"] = None
    except Exception as exc:  # noqa: BLE001 - sweeps must survive bad cells
        row["record"] = None
        row["bounds"] = None
        row["error"] = f"{type(exc).__name__}: {exc}"
    return row


_LAST_TOPOLOGY: Optional[str] = None


def _execute_cell(cell: Cell) -> Dict[str, object]:
    """Worker entry point: per-topology cache hygiene around :func:`run_cell`.

    All five process-wide structure caches (min-cut solutions, Gomory-Hu
    trees, arborescence packings, relay paths, coding-scheme rank verdicts)
    are keyed on
    canonical graph signatures, so clearing them is about memory, not
    correctness; cells arrive grouped by topology, so the clears are rare.
    The GF kernel operand caches (spread operands, FFT spectra) are dropped
    on the same cadence — a new topology means new coding matrices, so the
    old operands will not recur.
    """
    global _LAST_TOPOLOGY
    if cell.topology != _LAST_TOPOLOGY:
        clear_mincut_cache()
        clear_gomory_hu_cache()
        clear_pack_cache()
        clear_relay_path_cache()
        clear_verification_cache()
        clear_kernel_caches()
        _LAST_TOPOLOGY = cell.topology
    return run_cell(cell)


def dump_row(row: Dict[str, object]) -> str:
    """The canonical one-line JSON serialisation of a row."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def _load_completed_rows(
    path: str, spec: ExperimentSpec, cells: Sequence[Cell]
) -> Tuple[Dict[str, Dict[str, object]], int]:
    """Parse an existing output file into reusable rows keyed by cell id.

    Malformed lines — most commonly a truncated final line after a worker was
    killed mid-write — are discarded (and counted) instead of aborting the
    resume; rows that do not belong to the current grid and rows that
    recorded an error (so a transient failure is retried rather than frozen
    in) are dropped the same way.

    Returns:
        ``(completed_rows_by_cell_id, discarded_line_count)``.
    """
    expected = {cell.cell_id: cell for cell in cells}
    completed: Dict[str, Dict[str, object]] = {}
    discarded = 0
    if not os.path.exists(path):
        return completed, discarded
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                discarded += 1
                continue
            if not isinstance(row, dict):
                discarded += 1
                continue
            cell = expected.get(row.get("cell_id"))
            if (
                cell is not None
                and row.get("schema") == ROW_SCHEMA_VERSION
                and row.get("spec") == spec.name
                and row.get("seed") == cell.seed
                and row.get("error") is None
            ):
                completed[cell.cell_id] = row
            else:
                discarded += 1
    return completed, discarded


def _write_rows_atomically(path: str, rows: Sequence[Dict[str, object]]) -> None:
    """Replace ``path`` with one canonical JSON line per row, crash-safely.

    The single serialization used both by the pre-append rewrite and the
    end-of-run compaction, so resumed files can never diverge from fresh-run
    files byte for byte.  The temp file is fully written and fsynced before
    the atomic rename, so a kill at any instant leaves either the old file or
    the complete new one — never a truncated mix; a failed write cleans up
    its temp file instead of leaving it to shadow the next attempt.
    """
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as tmp:
            for row in rows:
                tmp.write(dump_row(row) + "\n")
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    # Persist the rename itself (best effort: not every filesystem supports
    # fsync on a directory handle).
    try:
        dir_fd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _count_unresolved_quarantine(
    candidate: str, available: Dict[str, Dict[str, object]]
) -> int:
    """How many cells a leftover quarantine file names that are still missing.

    Cells that have since completed (their id is in ``available``) are
    vindicated; unparseable lines count as unresolved — a corrupt quarantine
    file is itself worth reporting, not deleting.
    """
    unresolved = 0
    try:
        with open(candidate, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    unresolved += 1
                    continue
                if not isinstance(row, dict) or row.get("cell_id") not in available:
                    unresolved += 1
    except OSError:
        return 0
    return unresolved


def _ends_with_newline(path: str) -> bool:
    """Whether the file's last byte is a newline (vacuously true when empty)."""
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return True
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) == b"\n"
    except OSError:
        return True


@dataclass(frozen=True)
class RunSummary:
    """Outcome of one :func:`run_spec` invocation.

    Attributes:
        spec_name: The executed spec.
        rows: All rows available at the end, in canonical grid order
            (computed this run plus rows reused from a previous run).
        computed_cells: How many cells were actually executed.
        skipped_cells: How many were reused from the existing output file.
        discarded_rows: Lines of the existing output file dropped during
            resume (truncated/corrupt lines, stale or errored rows).
        total_cells: Size of the full grid.
        out_path: The output file, or ``None`` for in-memory runs.
        retried_cells: Distinct cells whose worker died at least once and
            were re-executed on a respawned worker.
        quarantined_cells: Cells abandoned after exhausting their retry
            budget (their identities live in the quarantine file, not in
            ``rows``).
        quarantine_path: The quarantine JSONL next to the output file, or
            ``None`` when nothing was quarantined (this run or — still
            unresolved — a prior one).
        stale_quarantined_cells: Cells a *prior* run quarantined that this
            run neither completed nor re-quarantined.  The leftover file is
            kept in place and reported, never silently ignored — e.g. a
            resume invoked with ``--limit`` that happened to retry nothing.
    """

    spec_name: str
    rows: List[Dict[str, object]]
    computed_cells: int
    skipped_cells: int
    total_cells: int
    out_path: Optional[str]
    discarded_rows: int = 0
    profile_path: Optional[str] = None
    retried_cells: int = 0
    quarantined_cells: int = 0
    quarantine_path: Optional[str] = None
    stale_quarantined_cells: int = 0


def _worker_pool_main(conn: Connection) -> None:
    """Supervised-worker child: execute cells off ``conn`` until told to stop.

    The protocol is strictly request/response — one pickled :class:`Cell` in,
    one row dict out — so the supervisor always knows which cell a dead
    worker was holding.  A ``None`` request (or a closed pipe) is the
    shutdown signal.
    """
    try:
        while True:
            try:
                cell = conn.recv()
            except (EOFError, OSError):
                return
            if cell is None:
                return
            conn.send(_execute_cell(cell))
    finally:
        conn.close()


@dataclass
class _InFlight:
    """One cell's journey through the supervised pool."""

    cell: Cell
    attempts: int = 0
    exitcodes: List[Optional[int]] = field(default_factory=list)


def _quarantine_row(item: _InFlight) -> Dict[str, object]:
    """The JSONL row describing a quarantined cell.

    Mirrors the identity fields of a result row so quarantine files are
    self-describing, and carries the crash evidence (attempt count and the
    exit codes of the dead workers — e.g. ``-9`` for SIGKILL) in place of a
    record.
    """
    cell = item.cell
    return {
        "schema": ROW_SCHEMA_VERSION,
        "spec": cell.spec_name,
        "cell_id": cell.cell_id,
        "seed": cell.seed,
        "attempts": item.attempts,
        "worker_exitcodes": list(item.exitcodes),
        "error": (
            f"WorkerCrash: worker process died {item.attempts} time(s) "
            "executing this cell"
        ),
    }


def _run_supervised(
    pending: Sequence[Cell],
    workers: int,
    emit: Callable[[Dict[str, object]], None],
    max_cell_retries: int,
    retry_backoff: float,
) -> Tuple[int, List[Dict[str, object]]]:
    """Execute ``pending`` on a crash-tolerant pool of worker processes.

    Unlike :class:`multiprocessing.Pool` — which deadlocks or aborts the whole
    map when a worker is OOM-killed — each worker owns a private duplex pipe,
    so a death (the pipe hitting EOF) is attributable to exactly one in-flight
    cell.  Dead workers are respawned immediately; their cell is retried with
    exponential backoff (``retry_backoff * 2**k``) and quarantined after
    ``max_cell_retries`` retries instead of sinking the sweep.

    Calls ``emit`` with each completed row (any thread-unsafe persistence
    stays in the caller, which runs single-threaded).

    Returns:
        ``(retried_cell_count, quarantine_rows)`` where the count is of
        distinct cells that crashed at least once and the rows describe the
        cells that exhausted their budget.
    """
    ctx = multiprocessing.get_context()
    queue: List[_InFlight] = [_InFlight(cell) for cell in pending]
    next_index = 0
    retried: set = set()
    quarantined: List[Dict[str, object]] = []

    def spawn() -> Connection:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_pool_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        processes[parent_conn] = process
        return parent_conn

    def reap(conn: Connection) -> Optional[int]:
        process = processes.pop(conn)
        conn.close()
        process.join()
        return process.exitcode

    processes: Dict[Connection, object] = {}
    idle: List[Connection] = []
    busy: Dict[Connection, _InFlight] = {}
    for _ in range(max(1, min(workers, len(queue)))):
        idle.append(spawn())
    try:
        while next_index < len(queue) or busy:
            while idle and next_index < len(queue):
                conn = idle.pop()
                item = queue[next_index]
                next_index += 1
                try:
                    conn.send(item.cell)
                except (OSError, ValueError):
                    # The worker died while idle: the cell was never
                    # attempted, so it goes back to the head of the queue
                    # without being charged a retry.
                    next_index -= 1
                    reap(conn)
                    idle.append(spawn())
                    continue
                busy[conn] = item
            if not busy:
                continue
            for conn in _connection_wait(list(busy)):
                item = busy.pop(conn)
                try:
                    row = conn.recv()
                except (EOFError, OSError):
                    # Death mid-cell (OOM kill, SIGKILL, segfault): respawn
                    # the worker, then retry or quarantine the cell.
                    item.attempts += 1
                    item.exitcodes.append(reap(conn))
                    idle.append(spawn())
                    if item.attempts > max_cell_retries:
                        quarantined.append(_quarantine_row(item))
                    else:
                        retried.add(item.cell.cell_id)
                        if retry_backoff > 0:
                            time.sleep(
                                retry_backoff * 2 ** (item.attempts - 1)
                            )
                        queue.append(item)
                    continue
                emit(row)
                idle.append(conn)
    finally:
        for conn, process in list(processes.items()):
            try:
                conn.send(None)
            except (OSError, ValueError):
                pass
            conn.close()
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join()
    return len(retried), quarantined


#: How many cProfile lines each profiled cell keeps in the dump.
_PROFILE_TOP = 25


def _profiled_cell(cell: Cell) -> Tuple[Dict[str, object], str]:
    """Run one cell under cProfile; return its row and the top-25 report."""
    profiler = cProfile.Profile()
    profiler.enable()
    row = _execute_cell(cell)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(_PROFILE_TOP)
    return row, buffer.getvalue()


def run_spec(
    spec: ExperimentSpec,
    out_path: Optional[str] = None,
    workers: int = 1,
    limit: Optional[int] = None,
    resume: bool = True,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
    profile: bool = False,
    max_cell_retries: int = 2,
    retry_backoff: float = 0.5,
) -> RunSummary:
    """Run (or resume) every cell of a spec and persist one JSONL row per cell.

    Args:
        spec: The sweep to execute.
        out_path: JSONL output file.  ``None`` runs fully in memory.
        workers: Worker processes; ``1`` runs serially in-process.
        limit: Execute at most this many not-yet-completed cells, then stop
            (persisting what finished) — the hook the resume tests use to
            simulate a killed sweep.
        resume: Reuse completed rows from an existing output file.  When
            ``False`` any existing file is ignored and overwritten.
        progress: Optional callback invoked with each freshly computed row.
        profile: Run every computed cell under :mod:`cProfile` and write its
            top-25 cumulative report to ``<out_path>.profile.txt`` next to
            the JSONL (in-memory runs collect but discard the report).
            Forces serial execution so the profiles are not split across
            worker processes; the rows themselves are unaffected.
        max_cell_retries: How many times a cell whose worker process died is
            re-executed (on a fresh worker) before being quarantined to
            ``<out_path>.quarantine.jsonl``.  Applies to parallel runs; a
            serial run dies with its only process.
        retry_backoff: Base delay in seconds before retrying a crashed cell
            (doubled per subsequent crash of the same cell); ``0`` retries
            immediately (the hook crash tests use).

    Returns:
        A :class:`RunSummary`; ``rows`` is in canonical grid order and, when
        the grid ran to completion, matches the persisted file line for line.
    """
    if profile:
        workers = 1
    cells = spec.expand()
    forced_backend = False
    if spec.kernel_backend and not os.environ.get("REPRO_GF_BACKEND"):
        # Spec-level backend override, propagated through the environment so
        # spawned worker processes inherit it; an explicit REPRO_GF_BACKEND
        # set by the operator wins over the spec value.  Restored on exit so
        # back-to-back sweeps in one process do not leak the override.
        os.environ["REPRO_GF_BACKEND"] = spec.kernel_backend
        forced_backend = True
    completed: Dict[str, Dict[str, object]] = {}
    discarded = 0
    if out_path and resume:
        completed, discarded = _load_completed_rows(out_path, spec, cells)
    pending = [cell for cell in cells if cell.cell_id not in completed]
    if limit is not None:
        pending = pending[: max(0, limit)]

    handle = None
    if out_path:
        directory = os.path.dirname(os.path.abspath(out_path))
        os.makedirs(directory, exist_ok=True)
        if resume and completed and (discarded or not _ends_with_newline(out_path)):
            # The file contained lines we are not reusing (e.g. a truncated
            # trailing row after a mid-write kill), or its last line lacks a
            # newline (kill between the row text and its "\n"): rewrite only
            # the good rows before appending, so new rows never glue onto a
            # partial line.
            _write_rows_atomically(
                out_path,
                [completed[cell.cell_id] for cell in cells if cell.cell_id in completed],
            )
        mode = "a" if (resume and completed) else "w"
        handle = open(out_path, mode, encoding="utf-8")

    computed: Dict[str, Dict[str, object]] = {}
    profile_sections: List[str] = []
    retried_cells = 0
    quarantine_rows: List[Dict[str, object]] = []
    try:
        if pending:
            if workers > 1:

                def emit(row: Dict[str, object]) -> None:
                    computed[row["cell_id"]] = row
                    if handle is not None:
                        handle.write(dump_row(row) + "\n")
                        handle.flush()
                    if progress is not None:
                        progress(row)

                retried_cells, quarantine_rows = _run_supervised(
                    pending,
                    workers,
                    emit,
                    max_cell_retries=max_cell_retries,
                    retry_backoff=retry_backoff,
                )
            else:
                for cell in pending:
                    if profile:
                        row, report = _profiled_cell(cell)
                        profile_sections.append(
                            f"=== {row['cell_id']}\n{report}"
                        )
                    else:
                        row = _execute_cell(cell)
                    computed[row["cell_id"]] = row
                    if handle is not None:
                        handle.write(dump_row(row) + "\n")
                        handle.flush()
                    if progress is not None:
                        progress(row)
    finally:
        if handle is not None:
            handle.close()
        if forced_backend:
            os.environ.pop("REPRO_GF_BACKEND", None)

    available = dict(completed)
    available.update(computed)
    rows = [available[cell.cell_id] for cell in cells if cell.cell_id in available]

    if out_path:
        # Compact to canonical grid order so a fresh run and a resumed run of
        # the same spec produce byte-identical files.
        _write_rows_atomically(out_path, rows)

    profile_path = None
    if profile and out_path and profile_sections:
        profile_path = out_path + ".profile.txt"
        with open(profile_path, "w", encoding="utf-8") as profile_handle:
            profile_handle.write("".join(profile_sections))

    quarantine_path = None
    stale_quarantined = 0
    if out_path:
        candidate = out_path + ".quarantine.jsonl"
        if quarantine_rows:
            _write_rows_atomically(candidate, quarantine_rows)
            quarantine_path = candidate
        elif os.path.exists(candidate):
            stale_quarantined = _count_unresolved_quarantine(candidate, available)
            if stale_quarantined:
                # The leftover file still names cells this run did not
                # complete (e.g. a --limit resume that retried nothing):
                # keep it and report it, so it cannot be silently ignored.
                quarantine_path = candidate
            else:
                # This run completed every previously quarantined cell: a
                # stale quarantine file would misreport the sweep as
                # degraded.
                os.remove(candidate)

    return RunSummary(
        spec_name=spec.name,
        rows=rows,
        computed_cells=len(computed),
        skipped_cells=len(completed),
        total_cells=len(cells),
        out_path=out_path,
        discarded_rows=discarded,
        profile_path=profile_path,
        retried_cells=retried_cells,
        quarantined_cells=len(quarantine_rows),
        quarantine_path=quarantine_path,
        stale_quarantined_cells=stale_quarantined,
    )
