"""Parallel cell execution with persisted, resumable JSONL results.

The runner shards a spec's cells across ``multiprocessing`` workers, streams
one JSON row per completed cell to the output file (append-only, crash safe),
and on completion compacts the file into canonical grid order.  Rows are pure
functions of their cell — exact rationals are serialised as ``"p/q"`` strings,
every mapping key is a string, and ``json.dumps(..., sort_keys=True)`` is used
throughout — so a fresh run and a killed-then-resumed run of the same spec
produce byte-identical files.

Resume: before executing, the runner reads any existing output file, keeps
every well-formed row whose cell id belongs to the current grid (matching
spec, seed and schema version), and only computes the rest.

Each worker clears the process-wide min-cut cache whenever it switches to an
unrelated topology (cells arrive grouped by topology, so this is rare) and
relies on :func:`repro.gf.field.get_field` canonicalisation to share field
tables within the worker.
"""

from __future__ import annotations

import cProfile
import io
import json
import multiprocessing
import os
import pstats
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.capacity.bounds import CapacityAnalysis, analyse_network
from repro.classical.relay import clear_relay_path_cache
from repro.coding.verification import clear_verification_cache
from repro.engine.protocol import get_protocol
from repro.engine.spec import Cell, ExperimentSpec
from repro.graph.flow_cache import clear_mincut_cache
from repro.graph.spanning_trees import clear_pack_cache

#: Version stamp of the persisted row layout; bump on breaking changes so
#: resume never mixes incompatible rows.
ROW_SCHEMA_VERSION = 1


#: Per-process memo of analytical bounds keyed by (topology, source, f); the
#: bounds depend only on graph structure, so the handful of distinct keys in a
#: grid are computed once per worker instead of once per cell.
_ANALYSIS_MEMO: Dict[tuple, CapacityAnalysis] = {}


def _bounds_jsonable(analysis: CapacityAnalysis) -> Dict[str, object]:
    return {
        "gamma_star": analysis.gamma_star,
        "rho_star": analysis.rho_star,
        "nab_lower_bound": str(analysis.nab_lower_bound),
        "capacity_upper_bound": str(analysis.capacity_upper_bound),
        "guaranteed_fraction": str(analysis.guaranteed_fraction),
        "achieved_fraction": str(analysis.achieved_fraction),
    }


def run_cell(cell: Cell) -> Dict[str, object]:
    """Execute one cell and return its persisted-row dict.

    The row is deterministic: it contains no timestamps or host information,
    only the cell identity, the protocol's :class:`RunRecord` and the
    network's analytical bounds.  Protocol failures are captured in an
    ``"error"`` field instead of aborting the sweep.
    """
    scenario = cell.scenario()
    row: Dict[str, object] = {
        "schema": ROW_SCHEMA_VERSION,
        "spec": cell.spec_name,
        "cell_id": cell.cell_id,
        "seed": cell.seed,
        "topology": cell.topology,
        "strategy": cell.strategy,
        "faulty_nodes": list(cell.faulty_nodes),
        "payload_bytes": cell.payload_bytes,
        "instances": cell.instances,
        "max_faults": cell.max_faults,
        "protocol": cell.protocol,
        "source": scenario.source,
        "execution": cell.execution,
        "link_model": cell.link_model,
    }
    try:
        memo_key = (cell.topology, scenario.source, cell.max_faults)
        analysis = _ANALYSIS_MEMO.get(memo_key)
        if analysis is None:
            analysis = analyse_network(scenario.graph, scenario.source, cell.max_faults)
            _ANALYSIS_MEMO[memo_key] = analysis
        protocol = get_protocol(cell.protocol)
        params: Dict[str, object] = {
            "max_faults": cell.max_faults,
            "coding_seed": cell.seed,
            "execution": cell.execution,
        }
        if cell.link_model != "instant":
            # The zero-latency scheduled clock is contractually identical to
            # the plain transport's (see repro.transport.scheduled), so
            # default cells skip the per-send scheduling bookkeeping entirely.
            params["link_model"] = cell.link_model
        record = protocol.run(
            scenario.graph,
            scenario.source,
            list(scenario.inputs),
            scenario.fault_model,
            params,
        )
        row["record"] = record.to_jsonable()
        row["bounds"] = _bounds_jsonable(analysis)
        row["error"] = None
    except Exception as exc:  # noqa: BLE001 - sweeps must survive bad cells
        row["record"] = None
        row["bounds"] = None
        row["error"] = f"{type(exc).__name__}: {exc}"
    return row


_LAST_TOPOLOGY: Optional[str] = None


def _execute_cell(cell: Cell) -> Dict[str, object]:
    """Worker entry point: per-topology cache hygiene around :func:`run_cell`.

    All four process-wide structure caches (min-cut solutions, arborescence
    packings, relay paths, coding-scheme rank verdicts) are keyed on
    canonical graph signatures, so clearing them is about memory, not
    correctness; cells arrive grouped by topology, so the clears are rare.
    """
    global _LAST_TOPOLOGY
    if cell.topology != _LAST_TOPOLOGY:
        clear_mincut_cache()
        clear_pack_cache()
        clear_relay_path_cache()
        clear_verification_cache()
        _LAST_TOPOLOGY = cell.topology
    return run_cell(cell)


def dump_row(row: Dict[str, object]) -> str:
    """The canonical one-line JSON serialisation of a row."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def _load_completed_rows(
    path: str, spec: ExperimentSpec, cells: Sequence[Cell]
) -> Tuple[Dict[str, Dict[str, object]], int]:
    """Parse an existing output file into reusable rows keyed by cell id.

    Malformed lines — most commonly a truncated final line after a worker was
    killed mid-write — are discarded (and counted) instead of aborting the
    resume; rows that do not belong to the current grid and rows that
    recorded an error (so a transient failure is retried rather than frozen
    in) are dropped the same way.

    Returns:
        ``(completed_rows_by_cell_id, discarded_line_count)``.
    """
    expected = {cell.cell_id: cell for cell in cells}
    completed: Dict[str, Dict[str, object]] = {}
    discarded = 0
    if not os.path.exists(path):
        return completed, discarded
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                discarded += 1
                continue
            if not isinstance(row, dict):
                discarded += 1
                continue
            cell = expected.get(row.get("cell_id"))
            if (
                cell is not None
                and row.get("schema") == ROW_SCHEMA_VERSION
                and row.get("spec") == spec.name
                and row.get("seed") == cell.seed
                and row.get("error") is None
            ):
                completed[cell.cell_id] = row
            else:
                discarded += 1
    return completed, discarded


def _write_rows_atomically(path: str, rows: Sequence[Dict[str, object]]) -> None:
    """Replace ``path`` with one canonical JSON line per row (write-then-rename).

    The single serialization used both by the pre-append rewrite and the
    end-of-run compaction, so resumed files can never diverge from fresh-run
    files byte for byte.
    """
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as tmp:
        for row in rows:
            tmp.write(dump_row(row) + "\n")
    os.replace(tmp_path, path)


def _ends_with_newline(path: str) -> bool:
    """Whether the file's last byte is a newline (vacuously true when empty)."""
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return True
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) == b"\n"
    except OSError:
        return True


@dataclass(frozen=True)
class RunSummary:
    """Outcome of one :func:`run_spec` invocation.

    Attributes:
        spec_name: The executed spec.
        rows: All rows available at the end, in canonical grid order
            (computed this run plus rows reused from a previous run).
        computed_cells: How many cells were actually executed.
        skipped_cells: How many were reused from the existing output file.
        discarded_rows: Lines of the existing output file dropped during
            resume (truncated/corrupt lines, stale or errored rows).
        total_cells: Size of the full grid.
        out_path: The output file, or ``None`` for in-memory runs.
    """

    spec_name: str
    rows: List[Dict[str, object]]
    computed_cells: int
    skipped_cells: int
    total_cells: int
    out_path: Optional[str]
    discarded_rows: int = 0
    profile_path: Optional[str] = None


#: How many cProfile lines each profiled cell keeps in the dump.
_PROFILE_TOP = 25


def _profiled_cell(cell: Cell) -> Tuple[Dict[str, object], str]:
    """Run one cell under cProfile; return its row and the top-25 report."""
    profiler = cProfile.Profile()
    profiler.enable()
    row = _execute_cell(cell)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(_PROFILE_TOP)
    return row, buffer.getvalue()


def run_spec(
    spec: ExperimentSpec,
    out_path: Optional[str] = None,
    workers: int = 1,
    limit: Optional[int] = None,
    resume: bool = True,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
    profile: bool = False,
) -> RunSummary:
    """Run (or resume) every cell of a spec and persist one JSONL row per cell.

    Args:
        spec: The sweep to execute.
        out_path: JSONL output file.  ``None`` runs fully in memory.
        workers: Worker processes; ``1`` runs serially in-process.
        limit: Execute at most this many not-yet-completed cells, then stop
            (persisting what finished) — the hook the resume tests use to
            simulate a killed sweep.
        resume: Reuse completed rows from an existing output file.  When
            ``False`` any existing file is ignored and overwritten.
        progress: Optional callback invoked with each freshly computed row.
        profile: Run every computed cell under :mod:`cProfile` and write its
            top-25 cumulative report to ``<out_path>.profile.txt`` next to
            the JSONL (in-memory runs collect but discard the report).
            Forces serial execution so the profiles are not split across
            worker processes; the rows themselves are unaffected.

    Returns:
        A :class:`RunSummary`; ``rows`` is in canonical grid order and, when
        the grid ran to completion, matches the persisted file line for line.
    """
    if profile:
        workers = 1
    cells = spec.expand()
    completed: Dict[str, Dict[str, object]] = {}
    discarded = 0
    if out_path and resume:
        completed, discarded = _load_completed_rows(out_path, spec, cells)
    pending = [cell for cell in cells if cell.cell_id not in completed]
    if limit is not None:
        pending = pending[: max(0, limit)]

    handle = None
    if out_path:
        directory = os.path.dirname(os.path.abspath(out_path))
        os.makedirs(directory, exist_ok=True)
        if resume and completed and (discarded or not _ends_with_newline(out_path)):
            # The file contained lines we are not reusing (e.g. a truncated
            # trailing row after a mid-write kill), or its last line lacks a
            # newline (kill between the row text and its "\n"): rewrite only
            # the good rows before appending, so new rows never glue onto a
            # partial line.
            _write_rows_atomically(
                out_path,
                [completed[cell.cell_id] for cell in cells if cell.cell_id in completed],
            )
        mode = "a" if (resume and completed) else "w"
        handle = open(out_path, mode, encoding="utf-8")

    computed: Dict[str, Dict[str, object]] = {}
    profile_sections: List[str] = []
    try:
        if pending:
            if workers > 1:
                with multiprocessing.Pool(processes=workers) as pool:
                    results = pool.imap_unordered(_execute_cell, pending)
                    for row in results:
                        computed[row["cell_id"]] = row
                        if handle is not None:
                            handle.write(dump_row(row) + "\n")
                            handle.flush()
                        if progress is not None:
                            progress(row)
            else:
                for cell in pending:
                    if profile:
                        row, report = _profiled_cell(cell)
                        profile_sections.append(
                            f"=== {row['cell_id']}\n{report}"
                        )
                    else:
                        row = _execute_cell(cell)
                    computed[row["cell_id"]] = row
                    if handle is not None:
                        handle.write(dump_row(row) + "\n")
                        handle.flush()
                    if progress is not None:
                        progress(row)
    finally:
        if handle is not None:
            handle.close()

    available = dict(completed)
    available.update(computed)
    rows = [available[cell.cell_id] for cell in cells if cell.cell_id in available]

    if out_path:
        # Compact to canonical grid order so a fresh run and a resumed run of
        # the same spec produce byte-identical files.
        _write_rows_atomically(out_path, rows)

    profile_path = None
    if profile and out_path and profile_sections:
        profile_path = out_path + ".profile.txt"
        with open(profile_path, "w", encoding="utf-8") as profile_handle:
            profile_handle.write("".join(profile_sections))

    return RunSummary(
        spec_name=spec.name,
        rows=rows,
        computed_cells=len(computed),
        skipped_cells=len(completed),
        total_cells=len(cells),
        out_path=out_path,
        discarded_rows=discarded,
        profile_path=profile_path,
    )
