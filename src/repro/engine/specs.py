"""Named experiment specs runnable via ``python -m repro.engine --spec <name>``.

Keeping the canonical sweeps here (rather than in ``examples/`` or
``benchmarks/``) means every consumer — the CLI, the benchmarks and the tests
— runs exactly the same grids.
"""

from __future__ import annotations

from typing import Dict, List

from repro.engine.spec import FAULT_FREE, PIPELINED, SEQUENTIAL, ExperimentSpec
from repro.exceptions import ConfigurationError

#: The six adversary strategies the paper's attack analysis distinguishes.
CORE_ADVERSARIES = (
    "phase1-relay",
    "equivocating-source",
    "equality-garbage",
    "false-flag",
    "dispute-liar",
    "chaos",
)

_SPECS: Dict[str, ExperimentSpec] = {}


def register_spec(spec: ExperimentSpec, replace: bool = False) -> None:
    """Add a spec to the registry under its name."""
    if spec.name in _SPECS and not replace:
        raise ConfigurationError(f"spec {spec.name!r} is already registered")
    _SPECS[spec.name] = spec


def get_spec(name: str) -> ExperimentSpec:
    """Look up a registered spec by name.

    Raises:
        ConfigurationError: if the name is unknown.
    """
    if name not in _SPECS:
        raise ConfigurationError(
            f"unknown spec {name!r}; available: {', '.join(named_specs())}"
        )
    return _SPECS[name]


def named_specs() -> List[str]:
    """All registered spec names, sorted."""
    return sorted(_SPECS)


register_spec(
    ExperimentSpec(
        name="nab_vs_classical",
        topologies=("k4-fast", "bottleneck4", "ring7-chords"),
        strategies=(FAULT_FREE,) + CORE_ADVERSARIES,
        payload_bytes=(8,),
        fault_counts=(1,),
        protocols=("nab", "classical-flooding"),
        instances=6,
        description=(
            "The paper's headline comparison: NAB vs capacity-oblivious "
            "full-value flooding across 3 topologies, all 6 adversary "
            "strategies plus the fault-free baseline (42 cells).  Six "
            "instances per cell so dispute control visibly amortises."
        ),
    )
)

register_spec(
    ExperimentSpec(
        name="nab_vs_classical_quick",
        topologies=("k4-fast", "bottleneck4"),
        strategies=(FAULT_FREE, "equality-garbage"),
        payload_bytes=(8,),
        fault_counts=(1,),
        protocols=("nab", "classical-flooding"),
        instances=2,
        description="Smoke-sized slice of nab_vs_classical (8 cells).",
    )
)

register_spec(
    ExperimentSpec(
        name="protocol_matrix",
        topologies=("k4-fast", "bottleneck4", "ring7-chords", "k5-unit"),
        strategies=(FAULT_FREE,) + CORE_ADVERSARIES + ("crash", "sub-broadcast-liar"),
        payload_bytes=(8, 32),
        fault_counts=(1,),
        protocols=("nab", "classical-flooding", "eig"),
        instances=3,
        description=(
            "Every registered protocol against every named adversary on four "
            "topologies and two payload sizes (216 cells)."
        ),
    )
)

register_spec(
    ExperimentSpec(
        name="pipelined_nab",
        topologies=("k4-fast", "bottleneck4", "ring7-chords", "pipeline-3x3"),
        strategies=(FAULT_FREE,),
        payload_bytes=(8,),
        fault_counts=(1,),
        protocols=("nab",),
        executions=(SEQUENTIAL, PIPELINED),
        instances=8,
        description=(
            "Sequential vs Figure 3 pipelined NAB execution on the headline "
            "topologies plus a depth-3 layered pipeline, fault-free, 8 "
            "instances per cell (8 cells).  Pipelined cells are measured "
            "under per-hop propagation (not directly comparable to the "
            "zero-propagation sequential rows — the report appends the "
            "like-for-like speedup vs the per-hop sequential comparator) "
            "and record the measured event timeline plus the exact analytic "
            "schedule."
        ),
    )
)

register_spec(
    ExperimentSpec(
        name="large_payloads",
        # Topologies chosen for their equality-check rate rho (k4-fast: 8,
        # ring7-chords: 6, k7-fast: 15): the per-symbol field degree is
        # ceil(L / rho), so this grid works in GF(2^m) for m between ~1k and
        # ~22k bits.  Infeasible before PR 4: bit-serial field arithmetic,
        # per-instance arborescence re-packing and per-relay path re-derivation
        # made multi-KB cells minutes each; the windowed kernels + structure
        # caches + batched sends bring the whole grid into the CI budget.
        topologies=("k4-fast", "ring7-chords", "k7-fast"),
        strategies=(FAULT_FREE,),
        payload_bytes=(2048, 4096, 8192, 16384),
        fault_counts=(1,),
        protocols=("nab", "classical-flooding"),
        instances=2,
        description=(
            "The paper's asymptotic regime: 2 KB-16 KB payloads on three "
            "capacity-rich topologies, NAB vs the capacity-oblivious "
            "full-value baseline (24 cells).  Throughput should approach "
            "the Eq. 6 bound as L grows — the headline claim, now cheap "
            "enough to sweep."
        ),
    )
)

register_spec(
    ExperimentSpec(
        name="huge_payloads",
        # The megabyte-direction extension of large_payloads, unlocked by the
        # PR 7 kernel backends (the FFT-based numpy backend auto-selects at
        # degree >= 4096).  The capacity-rich "-hbd" fabrics keep the
        # per-symbol degree ceil(L / rho) inside the tabulated irreducible
        # set with no runtime polynomial search: k4-hbd has rho = 128
        # (degrees 4096 / 16384), k5-hbd has rho = 96 (5462 / 21846).  One
        # instance per cell: at 256 KB a single encode is the dominant cost.
        topologies=("k4-hbd", "k5-hbd"),
        strategies=(FAULT_FREE,),
        payload_bytes=(65536, 262144),
        fault_counts=(1,),
        protocols=("nab", "classical-flooding"),
        instances=1,
        description=(
            "The datacenter-fabric regime from PAPERS.md (InfiniteHBD-class "
            "capacity-rich pods): 64 KB and 256 KB payloads on two "
            "high-capacity complete graphs, NAB vs the capacity-oblivious "
            "baseline (8 cells).  Charts the Eq. 6 / Theorem 2 bounds at "
            "field degrees 4096-21846, where the FFT kernel backend carries "
            "the encode cost."
        ),
    )
)

register_spec(
    ExperimentSpec(
        name="lossy_links",
        topologies=("k4-fast", "bottleneck4", "ring7-chords"),
        strategies=(FAULT_FREE,),
        payload_bytes=(8,),
        fault_counts=(1,),
        protocols=("nab", "classical-flooding"),
        fault_plans=(
            "none",
            "drop-1pct",
            "drop-10pct",
            "drop-10pct-one-edge",
            "dup-mild",
        ),
        instances=4,
        description=(
            "Unreliable links under ARQ retransmission: the headline "
            "topologies across the named drop/duplicate fault plans, NAB vs "
            "classical flooding (30 cells).  The none column is the reliable "
            "baseline; every lossy cell must still satisfy "
            "agreement/validity (dead links degrade to omissions) and "
            "reports its retransmission overhead in "
            "record.metadata.reliability."
        ),
    )
)

register_spec(
    ExperimentSpec(
        name="datacenter_scale",
        # The PR 8 bounds chart: every datacenter family at 64-1024 nodes.
        # bounds_only cells never execute a protocol — each cell is one
        # gamma*/rho*/Eq. 6/Theorem 2 evaluation, which the Gomory-Hu layer
        # makes tractable at 1024 nodes.  f = 0 keeps the gamma/Omega
        # families singleton (the full graph); the f = 1 sweep lives in
        # datacenter_scale_f1 on the 64-80-node members, where the
        # O(n)-candidate families are still affordable.
        topologies=(
            "fat-tree-8",
            "fat-tree-16",
            "torus-8x8",
            "torus-16x16",
            "torus-32x32",
            "ring-rings-8x8",
            "ring-rings-16x16",
            "ring-rings-32x32",
            "octopus-8x8",
            "octopus-16x16",
            "octopus-32x32",
        ),
        strategies=(FAULT_FREE,),
        payload_bytes=(8,),
        fault_counts=(0,),
        protocols=("bounds",),
        instances=1,
        bounds_only=True,
        description=(
            "Analytical bounds on datacenter-scale fabrics (PAPERS.md: "
            "InfiniteHBD rings, fat-tree Clos, torus pods, sparse Octopus "
            "meshes) at 64-1024 nodes: per-cell gamma*, rho*, Eq. 6 and "
            "Theorem 2, no protocol execution (11 bounds-only cells).  "
            "Example: python -m repro.engine --spec datacenter_scale"
        ),
    )
)

register_spec(
    ExperimentSpec(
        name="datacenter_scale_f1",
        # One actually-Byzantine point per family: the smallest member of
        # each datacenter family that stays feasible at f = 1 (needs
        # connectivity >= 3; every family below has kappa >= 3 by
        # construction).  The gamma* family then holds n + 1 candidate
        # graphs and Omega_1 holds n subsets, each analysed via its own
        # cached Gomory-Hu tree.
        topologies=("fat-tree-8", "torus-8x8", "ring-rings-8x8", "octopus-8x8"),
        strategies=(FAULT_FREE,),
        payload_bytes=(8,),
        fault_counts=(1,),
        protocols=("bounds",),
        instances=1,
        bounds_only=True,
        description=(
            "f = 1 companion to datacenter_scale on the 64-80-node family "
            "members: full gamma*/rho* minimisation over the O(n) candidate "
            "fault sets (4 bounds-only cells)."
        ),
    )
)

register_spec(
    ExperimentSpec(
        name="adversary_zoo",
        # One worst-case arena: k7-unit at f = 2 (n = 7 = 3f + 1, the
        # tightest resilience the theorem allows on 7 nodes), 8 instances so
        # multi-round adaptive behaviour has room to unfold.  Every
        # hand-written strategy plus every composable zoo strategy, and one
        # search-found worst case: the "composed" cell pins the parameters
        # and placement that python -m repro.adversary.search (seed 0,
        # budget 96, objective dispute-control) found on this very grid —
        # an adaptive dispute-dodger rotating a single aggressor forces 4
        # dispute-control executions under this grid's cell seed (5 under
        # the search harness's) where every hand-written strategy forces 1,
        # while agreement and validity still hold on every cell.
        # equivocating-source is deliberately absent: a Byzantine source
        # makes validity vacuous (None), and this grid's contract is that
        # agreement_ok AND validity_ok stay strictly true everywhere.
        topologies=("k7-unit",),
        strategies=(
            "phase1-relay",
            "equality-garbage",
            "false-flag",
            "dispute-liar",
            "chaos",
            "crash",
            "sub-broadcast-liar",
            "stage-equivocator",
            "colluding-rotator",
            "adaptive-dodger",
            "relay-tamper",
            "composed",
        ),
        payload_bytes=(8,),
        fault_counts=(2,),
        protocols=("nab",),
        instances=8,
        strategy_params={
            "composed": {
                "components": [
                    {"kind": "adaptive-dodger", "targets": 1, "aggressors": 1}
                ],
                "rotate": True,
                "faulty_nodes": [4, 6],
            }
        },
        description=(
            "The adversary zoo on k7-unit at f = 2: all hand-written "
            "strategies, all composable zoo strategies, and the committed "
            "search-found worst case (12 cells).  The composed cell must "
            "force strictly more dispute-control executions than any "
            "hand-written cell while every cell keeps agreement and "
            "validity intact — both properties are asserted in "
            "tests/test_adversary_zoo.py."
        ),
    )
)

register_spec(
    ExperimentSpec(
        name="latency_models",
        # 7-node topologies only: the lan-wan model's slow links touch node 7,
        # so smaller graphs would silently degenerate to uniform latency.
        topologies=("k7-unit", "ring7-chords"),
        strategies=(FAULT_FREE, "equality-garbage"),
        payload_bytes=(8,),
        fault_counts=(1,),
        protocols=("nab", "classical-flooding"),
        link_models=("instant", "unit-latency", "lan-wan", "jitter-mild"),
        instances=4,
        description=(
            "Every protocol across the named propagation-delay models "
            "(32 cells).  The instant column is the zero-delay baseline "
            "(the measured-equals-analytical contract itself is property-"
            "tested in tests/test_scheduled_network.py); the other columns "
            "measure how far latency and jitter push completion beyond it."
        ),
    )
)
