"""Reporting layer: NAB-vs-classical throughput next to the analytical bounds.

Consumes the persisted JSONL rows of :mod:`repro.engine.runner` — it never
re-runs protocols — and renders one table line per scenario (topology ×
strategy × payload × ``f``), with one measured-throughput column per protocol
plus the Eq. 6 lower bound and Theorem 2 upper bound of the network, so the
paper's comparative claim can be read off directly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table


def _fraction(value: Optional[object]) -> Optional[Fraction]:
    if value is None:
        return None
    return Fraction(str(value))


def _scenario_key(row: Dict[str, object]) -> Tuple:
    return (
        row["topology"],
        row["strategy"],
        row["payload_bytes"],
        row["max_faults"],
        row.get("execution", "sequential"),
        row.get("link_model", "instant"),
        row.get("fault_plan", "none"),
        # Distinct parameterisations of the same strategy (e.g. two
        # "composed" cells with different components) are distinct scenarios.
        row.get("strategy_params", ""),
    )


def render_comparison(rows: Sequence[Dict[str, object]]) -> str:
    """Render persisted rows as a per-scenario protocol comparison table.

    Scenario rows appear in first-seen order; protocol columns in first-seen
    order.  Cells that errored render as ``error``, spec violations are
    flagged with ``!spec``, and the two analytical bounds plus NAB's achieved
    fraction of the Theorem 2 bound close each line.
    """
    protocols: List[str] = []
    scenarios: Dict[Tuple, Dict[str, object]] = {}
    for row in rows:
        protocol = str(row["protocol"])
        if protocol not in protocols:
            protocols.append(protocol)
        scenario = scenarios.setdefault(
            _scenario_key(row), {"bounds": None, "records": {}}
        )
        scenario["records"][protocol] = row
        if row.get("bounds") is not None:
            scenario["bounds"] = row["bounds"]

    headers = ["topology", "strategy", "L bits", "f", "exec"] + [
        f"{name} bits/unit" for name in protocols
    ] + ["Eq.6 bound", "Thm.2 bound", "nab/capacity"]
    table: List[List[object]] = []
    for key, scenario in scenarios.items():
        (topology_name, strategy, payload_bytes, max_faults,
         execution, model, plan, params) = key
        mode = execution if model == "instant" else f"{execution}+{model}"
        if plan != "none":
            mode += f"+{plan}"
        if params:
            # Mark parameterised strategies; the full canonical JSON lives in
            # the row itself and would not fit a table cell.
            strategy = f"{strategy}*"
        line: List[object] = [
            topology_name, strategy, 8 * payload_bytes, max_faults, mode,
        ]
        nab_throughput: Optional[Fraction] = None
        for protocol in protocols:
            row = scenario["records"].get(protocol)
            if row is None:
                line.append("-")
                continue
            if row.get("error"):
                line.append("error")
                continue
            record = row["record"]
            if record is None:
                # Bounds-only cell (datacenter-scale grids): no protocol ran;
                # the analytical columns at the end carry the content.
                line.append("bounds")
                continue
            throughput = _fraction(record.get("throughput"))
            spec_ok = record["agreement_ok"] and record["validity_ok"] is not False
            cell = "-" if throughput is None else f"{float(throughput):.4g}"
            if not spec_ok:
                cell += " !spec"
            metadata = record.get("metadata") or {}
            pipelined = metadata.get("execution") == "pipelined"
            if pipelined and metadata.get("speedup"):
                # Pipelined cells are measured under per-hop propagation, so
                # their throughput is not comparable to the zero-propagation
                # sequential rows; the like-for-like ratio (vs the per-hop
                # sequential comparator) is appended instead.
                speedup = _fraction(metadata["speedup"])
                cell += f" ({float(speedup):.2f}x vs per-hop seq)"
            line.append(cell)
            if protocol == "nab" and not pipelined:
                # Pipelined throughput is likewise not comparable to the
                # zero-propagation analytical bounds: leave nab/capacity "-".
                nab_throughput = throughput
        bounds = scenario["bounds"]
        if bounds is None:
            line += ["-", "-", "-"]
        else:
            lower = _fraction(bounds["nab_lower_bound"])
            upper = _fraction(bounds["capacity_upper_bound"])
            line.append(f"{float(lower):.4g}")
            line.append(f"{float(upper):.4g}")
            if nab_throughput is None or upper is None or upper == 0:
                line.append("-")
            else:
                line.append(f"{float(nab_throughput / upper):.3f}")
        table.append(line)
    return format_table(headers, table)


def summarize_rows(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate counters for a sweep: cells, errors, violations, Phase 3 runs.

    Also totals the ARQ overhead (``retransmit_bits``, ``dropped_messages``)
    of cells that ran under a link-fault plan, so lossy sweeps surface their
    degradation in one place.
    """
    errors = sum(1 for row in rows if row.get("error"))
    violations = 0
    phase3 = 0
    retransmit_bits = 0
    dropped_messages = 0
    for row in rows:
        record = row.get("record")
        if not record:
            continue
        phase3 += int(record.get("dispute_control_executions", 0))
        if not record["agreement_ok"] or record["validity_ok"] is False:
            violations += 1
        reliability = (record.get("metadata") or {}).get("reliability") or {}
        retransmit_bits += int(reliability.get("retransmit_bits", 0))
        dropped_messages += int(reliability.get("dropped_messages", 0))
    return {
        "cells": len(rows),
        "errors": errors,
        "spec_violations": violations,
        "dispute_control_executions": phase3,
        "retransmit_bits": retransmit_bits,
        "dropped_messages": dropped_messages,
    }
