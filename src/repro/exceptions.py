"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class FieldError(ReproError):
    """Raised for invalid finite-field constructions or operations.

    Examples include requesting a field of non-positive degree, dividing by
    zero, or mixing elements that belong to different fields.
    """


class MatrixError(ReproError):
    """Raised for invalid matrix operations over a finite field.

    Examples include dimension mismatches, inverting a singular matrix, or
    constructing a matrix from ragged rows.
    """


class GraphError(ReproError):
    """Raised for invalid graph constructions or queries.

    Examples include non-positive link capacities, self loops, duplicate
    edges, or querying vertices that are not part of the graph.
    """


class InfeasibleError(ReproError):
    """Raised when a combinatorial construction is infeasible.

    The most common case is requesting more capacity-disjoint spanning
    arborescences than the source min-cut supports.
    """


class CapacityViolationError(ReproError):
    """Raised when a transmission would exceed a link's capacity budget."""


class ProtocolError(ReproError):
    """Raised when a protocol is configured or driven incorrectly.

    This signals misuse of the library (for example running NAB with
    ``n < 3f + 1``), never a Byzantine fault: Byzantine behaviour is part of
    the model and is handled by the protocols, not reported as an error.
    """


class AgreementViolationError(ReproError):
    """Raised by validation helpers when agreement or validity is violated.

    The protocols themselves never raise this; it is used by test and
    analysis utilities (:mod:`repro.analysis`) that check protocol outputs
    against the Byzantine Broadcast specification.
    """


class ConfigurationError(ReproError):
    """Raised when scenario or workload configuration is inconsistent."""


class ReproductionFinding(ReproError):
    """Raised when an experiment produces evidence *against* the paper's claims.

    The adversarial search driver (:mod:`repro.adversary.search`) raises this
    when any explored scenario flips ``agreement_ok``/``validity_ok`` at
    ``f <= max_faults`` — a reproduction-level finding that must abort loudly
    (after persisting the offending row) rather than being averaged away into
    an objective score.
    """


class SchedulerError(ReproError):
    """Raised for invalid discrete-event schedules.

    Examples include scheduling an event in the past, a task graph with a
    dependency cycle, or referencing an unknown task.
    """
