"""repro — a reproduction of Network-Aware Byzantine Broadcast (Liang & Vaidya, PODC 2012).

The library implements the paper's NAB algorithm and every substrate it
depends on: exact ``GF(2^m)`` arithmetic, capacitated-graph algorithms
(max-flow / min-cut / arborescence packing), a synchronous point-to-point
network simulator with per-link capacity accounting, a classical Byzantine
broadcast used as a sub-protocol, the local-linear-coding Equality Check,
dispute control, and the capacity / throughput analysis of the paper's
theorems.

Quickstart::

    from repro import NetworkAwareBroadcast, FaultModel
    from repro.graph.generators import complete_graph

    nab = NetworkAwareBroadcast(complete_graph(4, capacity=2), source=1, max_faults=1)
    result = nab.run_instance(b"hello world!")
    print(hex(result.agreed_value()), result.elapsed)

See ``examples/`` for adversarial scenarios and the capacity analysis, and
``benchmarks/`` for the harnesses that regenerate the paper's figures and
theorem-level claims.
"""

from repro.capacity.bounds import CapacityAnalysis, analyse_network
from repro.core.instance import InstanceResult
from repro.core.nab import NABRunResult, NetworkAwareBroadcast
from repro.exceptions import ReproError
from repro.graph.network_graph import NetworkGraph
from repro.transport.faults import ByzantineStrategy, FaultModel
from repro.types import RunRecord

__version__ = "1.0.0"

__all__ = [
    "NetworkAwareBroadcast",
    "NABRunResult",
    "InstanceResult",
    "RunRecord",
    "NetworkGraph",
    "FaultModel",
    "ByzantineStrategy",
    "CapacityAnalysis",
    "analyse_network",
    "ReproError",
    "__version__",
]
